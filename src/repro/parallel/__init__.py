"""True process-parallel execution of coalesced DOALLs.

This is the hardware end of the reproduction: where :mod:`repro.machine`
*simulates* the paper's shared-memory multiprocessor, this package
*executes* coalesced loops on one — worker **processes** (no GIL) claiming
flat iterations from a shared fetch&add counter over numpy arrays backed by
``multiprocessing.shared_memory`` (zero-copy views in every worker).

* :mod:`repro.parallel.shm` — shared-memory array pool with guaranteed
  unlink (no leaked ``/dev/shm`` segments, even on crashes).
* :mod:`repro.parallel.counter` — the shared claim counter (a lock-guarded
  ``multiprocessing.Array``: the real fetch&add of the paper's protocol,
  resettable between dispatches, with batched claiming) plus the bridge
  that reuses :mod:`repro.scheduling.policies` chunk rules.
* :mod:`repro.parallel.worker` — the per-process claim/execute loop, in
  spawn-per-dispatch and persistent-pool flavors.
* :mod:`repro.parallel.pool` — the persistent :class:`WorkerPool`: spawn
  once, dispatch many times; amortizes fork, compile, and claim overhead
  across every DOALL of a run.
* :mod:`repro.parallel.runtime` — drivers: :func:`run_parallel_doall` for a
  single coalesced loop, :func:`run_parallel_procedure` for whole programs
  (serial segments run in the parent, DOALLs — top-level or nested under
  serial control — are dispatched).
* :mod:`repro.parallel.observe` — measured claim logs rendered as
  :class:`repro.machine.trace.SimResult` / Gantt charts, so real schedules
  can be plotted against simulator predictions.
* :mod:`repro.parallel.backend` — the ``backend="mp"`` adapter used by
  :func:`repro.api.coalesce_jit`, with graceful serial fallback.
* :mod:`repro.parallel.speculate` — the ``safety="speculate"`` logic:
  inspector/executor planning, shadow-array chunk-log validation, and the
  runtime certificates recorded for dynamically-decided dispatches.
"""

from repro.parallel.counter import SharedClaimCounter, policy_plan
from repro.parallel.backend import MPCompiledProcedure, compile_mp_procedure
from repro.parallel.errors import (
    ParallelDispatchError,
    ParallelError,
    ParallelTimeoutError,
    SafetyVerificationError,
    WorkerCrashError,
)
from repro.parallel.observe import to_sim_result
from repro.parallel.pool import WorkerPool
from repro.parallel.runtime import (
    ClaimEvent,
    ParallelProcedureResult,
    ParallelRunResult,
    resolve_safety,
    run_parallel_doall,
    run_parallel_procedure,
)
from repro.parallel.shm import SharedArrayPool
from repro.parallel.speculate import (
    SpecCertificate,
    SpecPlan,
    SpecValidation,
    speculation_plan,
    validate_chunk_logs,
)

__all__ = [
    "ClaimEvent",
    "MPCompiledProcedure",
    "ParallelDispatchError",
    "ParallelError",
    "ParallelProcedureResult",
    "ParallelRunResult",
    "ParallelTimeoutError",
    "SafetyVerificationError",
    "SharedArrayPool",
    "SharedClaimCounter",
    "SpecCertificate",
    "SpecPlan",
    "SpecValidation",
    "WorkerCrashError",
    "WorkerPool",
    "compile_mp_procedure",
    "policy_plan",
    "resolve_safety",
    "run_parallel_doall",
    "run_parallel_procedure",
    "speculation_plan",
    "to_sim_result",
    "validate_chunk_logs",
]
