"""Speculative dispatch: run first, validate, then commit or roll back.

``safety=speculate`` gives statically-unproven DOALL candidates a third
path beyond ``warn``/``enforce``:

1. **Inspector mode** — when :func:`repro.analysis.safety.inspector_eligible`
   holds (no array both written and read), a subscript-only pass over the
   flat index space (:func:`repro.runtime.inspector.inspect_dispatch`)
   decides the dispatch exactly before any worker runs.  Proven → normal
   executor with a :class:`SpecCertificate`; refuted → serial.

2. **Speculative mode** — when values flow through a written array
   (histogram's ``H(k) := H(k) + 1``), inspection is inconclusive by
   construction, so the runtime *speculates*: the written arrays are
   double-buffered into fresh shadow ``SharedArrayPool`` segments, workers
   execute chunks against the shadows with
   :func:`repro.runtime.inspector.record_chunk` logging per-chunk element
   read/write sets, and the parent validates the logs — every cross-chunk
   ``W∩W`` and ``W∩R`` must be empty.  Validation passing proves the
   parallel run equivalent to the serial order (the first divergent read
   would itself be a logged conflict), so the shadows are committed by
   bulk copy-back; otherwise the shadows are discarded and the loop
   re-runs serially on the untouched primary arrays — bit-identical to a
   serial execution, with the misspeculation counted.

Scalar hazards (PRIV002) refuse both modes: a value carried through a
scalar can be neither addressed nor shadow-buffered (workers never ship
scalar state back).

This module is the pure logic — planning, log validation, certificates;
the dispatch orchestration lives in :mod:`repro.parallel.runtime` and the
worker-side recording in :mod:`repro.parallel.worker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.safety import LoopSafety, array_access_sets, inspector_eligible
from repro.ir.stmt import Loop

__all__ = [
    "ChunkLog",
    "SpecCertificate",
    "SpecPlan",
    "SpecValidation",
    "merge_chunk_logs",
    "shadow_alias",
    "speculation_plan",
    "validate_chunk_logs",
    "written_arrays",
]

#: One worker chunk's access log: (lo, hi, write elements, read elements).
#: Elements are ``(array name, index tuple)`` over the *written* arrays
#: only — reads of read-only arrays cannot conflict and are not logged.
ChunkLog = tuple[int, int, tuple, tuple]


def written_arrays(loop: Loop) -> tuple[str, ...]:
    """The array names the dispatched body stores to, sorted."""
    written, _ = array_access_sets([loop.body])
    return tuple(sorted(written))


def shadow_alias(name: str, token: int) -> str:
    """The shadow segment name for a written array in one dispatch.

    The token makes aliases unique per dispatch occurrence so a persistent
    worker never confuses a stale shadow attachment with a fresh one
    (``.`` cannot appear in a DSL array name, so aliases never collide
    with real arrays).
    """
    return f"{name}.spec{token}"


@dataclass(frozen=True)
class SpecPlan:
    """How ``safety=speculate`` handles one statically-unproven dispatch."""

    #: "inspect" | "speculate" | "refuse"
    action: str
    reason: str
    written: tuple[str, ...] = ()


def speculation_plan(loop: Loop, verdict: LoopSafety | None) -> SpecPlan:
    """Classify an unproven dispatch into inspect / speculate / refuse.

    ``verdict`` is the static :class:`LoopSafety` for the loop (used for
    its PRIV002 findings); scalar hazards refuse outright, name-level
    write/read overlap routes to speculation, everything else to the
    inspector.
    """
    if verdict is not None:
        hazards = sorted(
            {f.scalar for f in verdict.findings if f.rule == "PRIV002" and f.scalar}
        )
        if hazards:
            return SpecPlan(
                "refuse",
                "scalar(s) %s carry values across iterations; neither "
                "inspection nor speculation can recover them"
                % ", ".join(hazards),
            )
    written = written_arrays(loop)
    eligible, reason = inspector_eligible(loop)
    if eligible:
        return SpecPlan("inspect", reason, written)
    return SpecPlan("speculate", reason, written)


@dataclass(frozen=True)
class SpecCertificate:
    """The runtime evidence recorded for one speculated/inspected dispatch."""

    loop_var: str
    mode: str  # "inspector" | "speculative"
    status: str  # "proven-dynamic" | "refuted" | "committed" | "rolled-back"
    iterations: int = 0
    chunks: int = 0
    conflicts: int = 0
    wall_s: float = 0.0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "loop": self.loop_var,
            "mode": self.mode,
            "status": self.status,
            "iterations": self.iterations,
            "chunks": self.chunks,
            "conflicts": self.conflicts,
            "wall_s": self.wall_s,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        extra = f": {self.detail}" if self.detail else ""
        return (
            f"dynamic[{self.mode}] loop {self.loop_var}: {self.status} "
            f"({self.iterations} iterations, {self.chunks} chunks, "
            f"{self.conflicts} conflict(s)){extra}"
        )


@dataclass
class SpecValidation:
    """Outcome of validating the gathered chunk logs of one dispatch."""

    ok: bool
    chunks: int
    elements: int
    #: Sample of cross-chunk collisions: (kind, element, chunk, chunk).
    conflicts: list[tuple[str, tuple, int, int]] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return f"{self.chunks} chunks disjoint over {self.elements} elements"
        kind, elem, a, b = self.conflicts[0]
        name, idx = elem
        return (
            f"{kind} conflict on {name}{list(idx)} between chunks "
            f"{a} and {b} (+{len(self.conflicts) - 1} more sampled)"
        )


def validate_chunk_logs(
    logs: Sequence[ChunkLog], max_conflicts: int = 8
) -> SpecValidation:
    """Cross-chunk conflict check over the workers' recorded access sets.

    Passes exactly when no element is written by two chunks (``W∩W``) or
    written by one chunk and read by another (``W∩R``, both orders — the
    chunks ran unordered, so either serial order is violated).  Passing
    proves the speculative run produced the serial result: any divergence
    would start at a read of a concurrently-written element, and both
    sides of that element are in the logs.
    """
    writers: dict[tuple, int] = {}
    conflicts: list[tuple[str, tuple, int, int]] = []
    for ci, (_, _, writes, _) in enumerate(logs):
        for elem in writes:
            prev = writers.setdefault(elem, ci)
            if prev != ci and len(conflicts) < max_conflicts:
                conflicts.append(("write/write", elem, prev, ci))
    for ci, (_, _, _, reads) in enumerate(logs):
        for elem in reads:
            w = writers.get(elem)
            if w is not None and w != ci and len(conflicts) < max_conflicts:
                conflicts.append(("write/read", elem, w, ci))
    return SpecValidation(
        ok=not conflicts,
        chunks=len(logs),
        elements=len(writers),
        conflicts=conflicts,
    )


def merge_chunk_logs(per_worker: Iterable[Sequence[ChunkLog]]) -> list[ChunkLog]:
    """Flatten per-worker logs into one list, ordered by chunk lower bound.

    The order is cosmetic (validation is symmetric); sorting just makes
    conflict samples deterministic across runs.
    """
    merged = [log for logs in per_worker for log in logs]
    merged.sort(key=lambda log: (log[0], log[1]))
    return merged
