"""The ``backend="mp"`` execution adapter for :mod:`repro.api`.

Wraps the process-parallel runtime behind the same ``(arrays, scalars)``
calling convention as :class:`repro.codegen.pygen.CompiledProcedure`, so
``coalesce_jit(backend="mp")`` is a drop-in swap for the serial backend.

Degradation policy (all observable via :attr:`MPCompiledProcedure.last`):

* nothing dispatchable (no top-level DOALL) → serial pygen, recorded;
* timeout → workers killed, shared memory unlinked, serial pygen rerun on
  the untouched caller arrays — the graceful-fallback path;
* worker crash → :class:`repro.parallel.runtime.WorkerCrashError` is
  re-raised: a crash means the program itself is broken, and silently
  rerunning it serially would just reproduce the bug slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.codegen.pygen import (
    CompiledProcedure,
    compile_procedure,
    generate_chunk_source,
)
from repro.ir.stmt import Loop, Procedure
from repro.parallel.runtime import (
    ParallelDispatchError,
    ParallelProcedureResult,
    ParallelTimeoutError,
    _dispatchable,
    run_parallel_procedure,
)


@dataclass
class MPCompiledProcedure:
    """A procedure bound to the process-parallel runtime.

    ``run`` mirrors the serial backends; ``source`` shows what workers
    execute (the chunk function per dispatchable DOALL).  ``last`` holds
    the most recent run's measured result, or the fallback reason when the
    serial path was taken.
    """

    proc: Procedure
    workers: int = 4
    policy: str | object = "gss"
    chunk: int | None = None
    timeout: float | None = None
    fallback: bool = True
    method: str | None = None
    log_events: bool = True
    _serial: CompiledProcedure = field(init=False, repr=False)
    last: ParallelProcedureResult | None = field(init=False, default=None)
    fallback_reason: str | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self._serial = compile_procedure(self.proc)

    @property
    def source(self) -> str:
        """Chunk-function source for every dispatchable top-level DOALL."""
        loops = [
            s
            for s in self.proc.body.stmts
            if isinstance(s, Loop) and _dispatchable(s)
        ]
        chunks = [
            generate_chunk_source(
                self.proc,
                loop=s,
                name=f"{self.proc.name}__chunk_{i}" if len(loops) > 1 else None,
            )
            for i, s in enumerate(loops)
        ]
        if not chunks:
            return self._serial.source
        return "\n".join(chunks)

    def run(
        self,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
    ) -> None:
        self.last = None
        self.fallback_reason = None
        try:
            self.last = run_parallel_procedure(
                self.proc,
                arrays,
                scalars,
                workers=self.workers,
                policy=self.policy,
                chunk=self.chunk,
                timeout=self.timeout,
                log_events=self.log_events,
                method=self.method,
            )
        except (ParallelDispatchError, ParallelTimeoutError) as exc:
            if not self.fallback:
                raise
            # Caller arrays are untouched on these paths (workers only ever
            # mutate the shared copies), so the serial rerun is clean.
            self.fallback_reason = f"{type(exc).__name__}: {exc}"
            self._serial.run(arrays, scalars)


def compile_mp_procedure(proc: Procedure, **options) -> MPCompiledProcedure:
    """Factory matching the other backends' ``compile_*_procedure`` shape."""
    return MPCompiledProcedure(proc, **options)
