"""The ``backend="mp"`` execution adapter for :mod:`repro.api`.

Wraps the process-parallel runtime behind the same ``(arrays, scalars)``
calling convention as :class:`repro.codegen.pygen.CompiledProcedure`, so
``coalesce_jit(backend="mp")`` is a drop-in swap for the serial backend.

Degradation policy (all observable via :attr:`MPCompiledProcedure.last`):

* nothing dispatchable (no top-level DOALL) → serial pygen, recorded;
* ``safety="enforce"`` and no dispatchable loop proven race-free →
  :class:`repro.parallel.errors.SafetyVerificationError` (a
  ``ParallelDispatchError``) → serial pygen rerun, refusal reason (with
  rule codes) recorded in ``fallback_reason``;
* ``safety="speculate"`` and every dispatch refused (scalar hazards) or
  refuted by the runtime inspector → same graceful serial rerun; a
  *rolled-back* speculation is not a fallback — the runtime already
  re-ran the loop serially and the result is exact;
* timeout → workers killed, shared memory unlinked, serial pygen rerun on
  the untouched caller arrays — the graceful-fallback path;
* worker crash → :class:`repro.parallel.runtime.WorkerCrashError` is
  re-raised: a crash means the program itself is broken, and silently
  rerunning it serially would just reproduce the bug slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.codegen.pygen import (
    CompiledProcedure,
    compile_procedure,
    generate_chunk_source,
)
from repro.ir.stmt import Procedure
from repro.parallel.runtime import (
    ParallelDispatchError,
    ParallelProcedureResult,
    ParallelTimeoutError,
    _dispatchable_loops,
    run_parallel_procedure,
)


@dataclass
class MPCompiledProcedure:
    """A procedure bound to the process-parallel runtime.

    ``run`` mirrors the serial backends; ``source`` shows what workers
    execute (the chunk function per dispatchable DOALL).  ``last`` holds
    the most recent run's measured result, or the fallback reason when the
    serial path was taken.  ``reuse_pool`` (default True) serves every
    dispatch of a run from one persistent worker fleet; ``claim_batch``
    hands workers that many chunks per counter critical section (unit and
    fixed policies — GSS always claims singly), or — the default
    ``"auto"`` — sizes the batch from the calibrator's measured per-chunk
    service time (:mod:`repro.tuning.calibrate`; the decision is pinned
    in the artifact cache, so only the first run ever measures).
    ``chunk_lang`` selects how workers execute claimed blocks — ``"c"``
    (native ctypes kernel), ``"numpy"`` (whole-slice vectorized), ``"py"``,
    or ``None``/``"auto"`` (C when a compiler is available, numpy
    otherwise); faster paths degrade automatically and
    ``last.chunk_lang`` reports what actually ran.  ``variants`` restricts
    the kernel farm to named builds and ``calibrate=True`` selects the
    dispatched build by measuring every available variant
    (``last.variants`` reports what dispatched).  ``safety`` selects
    the chunk-safety mode (``None`` → ``"warn"``): ``"enforce"`` refuses
    unproven dispatches — they run serially, and a fully-refused run
    falls back to the serial backend with the rule codes recorded in
    ``fallback_reason``; ``"speculate"`` gives unproven dispatches a
    dynamic chance (inspection / shadow-buffered speculation) and only
    falls back when every dispatch is beyond dynamic help
    (``last.inspected`` / ``speculated`` / ``committed`` /
    ``rolled_back`` account for what happened).
    """

    proc: Procedure
    workers: int = 4
    policy: str | object = "gss"
    chunk: int | None = None
    timeout: float | None = None
    fallback: bool = True
    method: str | None = None
    log_events: bool = True
    reuse_pool: bool = True
    claim_batch: int | str = "auto"
    chunk_lang: str | None = None
    safety: str | None = None
    variants: object = None
    calibrate: bool | None = None
    _serial: CompiledProcedure = field(init=False, repr=False)
    _safety_report: object | None = field(init=False, default=None, repr=False)
    last: ParallelProcedureResult | None = field(init=False, default=None)
    fallback_reason: str | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self._serial = compile_procedure(self.proc)

    @property
    def safety_report(self):
        """Static chunk-safety verdicts for this procedure (cached)."""
        if self._safety_report is None:
            from repro.analysis.safety import verify_procedure

            self._safety_report = verify_procedure(self.proc)
        return self._safety_report

    @property
    def source(self) -> str:
        """Chunk-function source for every dispatchable DOALL."""
        loops = _dispatchable_loops(self.proc.body)
        chunks = [
            generate_chunk_source(
                self.proc,
                loop=s,
                name=f"{self.proc.name}__chunk_{i}" if len(loops) > 1 else None,
            )
            for i, s in enumerate(loops)
        ]
        if not chunks:
            return self._serial.source
        return "\n".join(chunks)

    def run(
        self,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
    ) -> None:
        self.last = None
        self.fallback_reason = None
        try:
            self.last = run_parallel_procedure(
                self.proc,
                arrays,
                scalars,
                workers=self.workers,
                policy=self.policy,
                chunk=self.chunk,
                timeout=self.timeout,
                log_events=self.log_events,
                method=self.method,
                reuse_pool=self.reuse_pool,
                claim_batch=self.claim_batch,
                chunk_lang=self.chunk_lang,
                safety=self.safety,
                variants=self.variants,
                calibrate=self.calibrate,
            )
        except (ParallelDispatchError, ParallelTimeoutError) as exc:
            if not self.fallback:
                raise
            # Caller arrays are untouched on these paths (workers only ever
            # mutate the shared copies), so the serial rerun is clean.
            from repro.parallel.observe import record_fallback

            record_fallback()
            self.fallback_reason = f"{type(exc).__name__}: {exc}"
            self._serial.run(arrays, scalars)


def compile_mp_procedure(proc: Procedure, **options) -> MPCompiledProcedure:
    """Factory matching the other backends' ``compile_*_procedure`` shape."""
    return MPCompiledProcedure(proc, **options)
