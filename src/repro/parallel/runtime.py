"""Process-parallel drivers for coalesced DOALL procedures.

:func:`run_parallel_doall` executes a procedure whose body is one flat DOALL
(the shape coalescing produces) across worker processes: arrays move into
shared memory once, workers claim chunks through the shared fetch&add
counter, and the parent copies results back on success.

:func:`run_parallel_procedure` generalizes to whole programs (the paper's
*hybrid* case, e.g. Gauss–Jordan): every dispatchable DOALL — top-level or
nested under serial control flow — is handed to workers, everything else
runs serially in the parent over the same shared-memory views.  A hybrid
program therefore really performs one dispatch per serial-outer iteration
(one per pivot row), which is exactly the overhead profile the paper's
coalescing argument is about.

Two dispatch engines serve those drivers:

* ``reuse_pool=True`` (the default for whole procedures) — a persistent
  :class:`repro.parallel.pool.WorkerPool`: workers spawn once, each
  dispatch is a job message plus a gather barrier, chunk sources are
  cached by loop shape on both sides, and the shared claim counter is
  reset between loops instead of recreated.
* ``reuse_pool=False`` — the spawn-per-dispatch baseline: a fresh fleet
  of processes per DOALL (PR-1 behavior, kept as the comparison point —
  ``benchmarks/bench_p02_dispatch_overhead.py`` measures the gap).

``claim_batch=k`` lets unit/fixed self-scheduling take ``k`` chunks per
counter critical section (GSS keeps its one-chunk atomic
read-of-remaining semantics — see
:meth:`repro.parallel.counter.SharedClaimCounter.claim_batch`).  The
default ``claim_batch="auto"`` sizes the batch from the measured
per-chunk service time via the variant farm's micro-calibration
(:mod:`repro.tuning.calibrate`), pinning the decision in the artifact
cache so warm runs dispatch with zero re-measurement.

Robustness contract:

* the procedure is validated and checked for a dispatchable (DOALL,
  unit-step) loop *before* any process or segment is created —
  :class:`ParallelDispatchError` otherwise;
* a worker that raises (or dies) triggers termination of its peers and a
  :class:`WorkerCrashError` carrying the worker traceback;
* a per-run ``timeout`` kills the fleet and raises
  :class:`ParallelTimeoutError` (the ``backend="mp"`` adapter turns this
  into a graceful serial fallback);
* shared-memory segments are unlinked on **every** exit path — success,
  crash, or timeout — on pool close / context-manager exit, so
  ``/dev/shm`` never accumulates garbage.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.analysis.pdg import Reduction, recognize_reduction
from repro.cache import artifact_key, resolve_cache
from repro.codegen.cgen import generate_chunk_c
from repro.codegen.cload import compile_chunk_library, have_compiler
from repro.codegen.npgen import generate_chunk_numpy
from repro.codegen.pygen import generate_chunk_source, generate_source
from repro.ir.expr import (
    INTRINSICS,
    ArrayRef,
    BinOp,
    Const,
    Var,
    apply_binop,
    min_,
)
from repro.ir.printer import to_source
from repro.ir.stmt import Assign, Block, If, Loop, LoopKind, Procedure, Stmt
from repro.ir.validate import validate
from repro.ir.visitor import walk_exprs, walk_stmts
from repro.parallel.counter import SharedClaimCounter, policy_plan
from repro.parallel.errors import (
    ParallelDispatchError,
    ParallelError,
    ParallelTimeoutError,
    SafetyVerificationError,
    WorkerCrashError,
)
from repro.parallel.observe import (
    record_chunk_fallback,
    record_reduction_dispatch,
    record_run,
    record_safety,
    record_safety_block,
    record_speculate,
)
from repro.parallel.pool import (
    WorkerPool,
    gather_results,
    mp_context,
    raise_worker_crashes,
    terminate_procs,
)
from repro.parallel.shm import SharedArrayPool
from repro.parallel.speculate import (
    SpecCertificate,
    SpecPlan,
    shadow_alias,
    speculation_plan,
    validate_chunk_logs,
)
from repro.parallel.worker import worker_main
from repro.runtime.inspector import inspect_dispatch
from repro.runtime.interp import Interpreter, InterpreterError, eval_bound
from repro.scheduling.policies import SchedulingPolicy
from repro.tuning.calibrate import make_tuner
from repro.tuning.variants import default_variant, variant_by_name

__all__ = [
    "ClaimEvent",
    "ParallelDispatchError",
    "ParallelError",
    "ParallelProcedureResult",
    "ParallelRunResult",
    "ParallelTimeoutError",
    "SafetyVerificationError",
    "WorkerCrashError",
    "resolve_chunk_lang",
    "resolve_safety",
    "run_parallel_doall",
    "run_parallel_procedure",
]


def resolve_chunk_lang(requested: str | None) -> str:
    """Resolve a requested chunk language to what this host can run.

    ``None``/``"auto"`` pick ``"c"`` when a compiler is on PATH, else
    ``"numpy"`` — a compiler-less host runs whole-slice vectorized chunks
    rather than the interpreted ones (shapes the numpy generator refuses
    still degrade per-dispatch to ``"py"``).  An explicit ``"c"`` without
    a compiler degrades to ``"numpy"`` and records a chunk fallback (the
    run still succeeds — native chunks are an optimization, never a
    requirement).  Anything else raises :class:`ValueError`.
    """
    if requested in (None, "auto"):
        return "c" if have_compiler() else "numpy"
    if requested not in ("py", "c", "numpy"):
        raise ValueError(
            "chunk_lang must be 'py', 'c', 'numpy', or 'auto' "
            f"(got {requested!r})"
        )
    if requested == "c" and not have_compiler():
        record_chunk_fallback()
        return "numpy"
    return requested


def resolve_safety(requested: str | None) -> str:
    """Resolve a requested chunk-safety mode.

    ``None`` defaults to ``"warn"``: every run is verified and the report
    is attached to the result, but nothing is refused.  ``"enforce"``
    additionally refuses to dispatch any loop the verifier cannot prove
    race-free (it runs serially instead, or — when *nothing* is provable —
    the whole run raises :class:`SafetyVerificationError` before any
    worker is created).  ``"speculate"`` gives those unproven loops a
    dynamic chance instead: a runtime inspector proves disjointness where
    it can, speculation with commit/rollback covers the rest, and only
    loops neither can handle (scalar hazards) drop to serial.  ``"off"``
    skips verification entirely.
    """
    if requested is None:
        return "warn"
    if requested not in ("off", "warn", "enforce", "speculate"):
        raise ValueError(
            "safety must be 'off', 'warn', 'enforce', or 'speculate' "
            f"(got {requested!r})"
        )
    return requested


def _safety_gate(proc: Procedure, mode: str):
    """Verify ``proc``; return ``(report, blocked-loop-id set)``.

    Under ``"enforce"`` and ``"speculate"`` a verifier crash fails closed
    (the run is refused rather than optimistically dispatched); under
    ``"warn"`` it degrades to an unchecked run.  The blocked set is the
    statically-unproven loops — what enforce runs serially and speculate
    hands to the inspector/speculation machinery.
    """
    if mode == "off":
        return None, frozenset()
    from repro.analysis.safety import verify_procedure

    try:
        report = verify_procedure(proc)
    except Exception as exc:
        if mode in ("enforce", "speculate"):
            raise SafetyVerificationError(
                f"safety={mode}: chunk-safety verification of "
                f"{proc.name!r} failed: {exc}"
            ) from exc
        return None, frozenset()
    record_safety(report)
    if mode not in ("enforce", "speculate"):
        return report, frozenset()
    blocked = frozenset(
        loop_id for loop_id, v in report.by_id.items() if not v.proven
    )
    return report, blocked


def _unproven_summary(report) -> str:
    """One-line refusal reason: each unproven loop with its rule codes."""
    parts = []
    for v in report.loops:
        if not v.proven:
            rules = sorted({f.rule for f in v.findings}) or ["unproven"]
            parts.append(f"loop {v.loop_var} ({', '.join(rules)})")
    return "; ".join(parts)


@dataclass(frozen=True)
class ClaimEvent:
    """One executed chunk: who claimed it, what range, when (run-relative)."""

    worker: int
    lo: int
    hi: int  # inclusive loop values
    t_claim: float  # claim issued (seconds from run start)
    t_work: float  # claim granted, body work begins
    t_end: float  # chunk finished

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1


@dataclass
class ParallelRunResult:
    """Measured outcome of one parallel DOALL dispatch."""

    loop_var: str
    lo: int
    hi: int
    workers: int
    policy: str
    wall_time: float
    iterations_per_worker: list[int]
    claims: int
    events: list[ClaimEvent] = field(default_factory=list)
    #: Counter critical sections entered; < ``claims`` when claims were
    #: batched, 0 for static plans (no shared counter at all).
    lock_ops: int = 0
    #: Chunk language the workers actually executed: ``"c"`` (every worker
    #: ran the native kernel), ``"numpy"`` (whole-slice vectorized),
    #: ``"py"``, or ``"mixed"`` (some workers degraded mid-fleet).
    chunk_lang: str = "py"
    #: Variant-farm build the dispatch executed (``"gcc-O3"``,
    #: ``"numpy"``, ``"py"``, ...) or None when workers disagreed.
    variant: str | None = None
    #: Chunks claimed per counter critical section, as actually resolved
    #: (the calibrated/heuristic value behind ``claim_batch="auto"``).
    claim_batch: int = 1
    #: How ``safety=speculate`` handled this dispatch: ``"proven-dynamic"``
    #: (inspector certified, normal execution), ``"committed"`` /
    #: ``"rolled-back"`` (speculative execution), or None (not speculated).
    speculation: str | None = None
    #: The workers' recorded chunk access logs (speculative dispatches
    #: only): ``(lo, hi, writes, reads)`` per executed chunk.
    spec_logs: list = field(default_factory=list, repr=False)
    #: Set when this dispatch ran through the partial-accumulator
    #: reduction engine: the accumulator's name and its folded final
    #: value (also written back into the caller's scalar environment).
    reduction_scalar: str | None = None
    reduction_value: float | None = None

    @property
    def total_iterations(self) -> int:
        return sum(self.iterations_per_worker)

    def to_sim_result(self):
        """Measured schedule as a :class:`repro.machine.trace.SimResult`."""
        from repro.parallel.observe import to_sim_result

        return to_sim_result(self)

    def gantt(self, width: int = 50, time_scale: float = 1e6) -> str:
        """Text Gantt chart of the *measured* schedule (default: µs)."""
        from repro.machine.gantt import render_gantt
        from repro.parallel.observe import to_sim_result

        return render_gantt(to_sim_result(self, time_scale), width=width)


@dataclass
class ParallelProcedureResult:
    """Outcome of a whole-procedure run: one entry per dispatched DOALL."""

    wall_time: float
    dispatches: list[ParallelRunResult] = field(default_factory=list)
    serial_stmts: int = 0
    #: Whether the run used one persistent worker pool for every dispatch
    #: (True) or spawned a fresh fleet per dispatch (False).
    reused_pool: bool = False
    #: Chunk-safety mode the run executed under ("off", "warn", "enforce").
    safety_mode: str = "off"
    #: The verifier's :class:`~repro.analysis.safety.SafetyReport`
    #: (None when ``safety_mode == "off"`` or verification crashed under
    #: "warn").
    safety: object | None = field(default=None, repr=False)
    #: Dispatches refused under enforce and executed serially instead.
    blocked_dispatches: int = 0
    #: ``safety=speculate`` accounting: dispatches the inspector addressed,
    #: the subset it proved (dispatched normally with a certificate),
    #: dispatches run speculatively, and how those resolved.
    inspected: int = 0
    proven_dynamic: int = 0
    speculated: int = 0
    committed: int = 0
    rolled_back: int = 0
    #: Dispatches executed through the partial-accumulator reduction
    #: engine (recognized ``s := s ⊕ expr`` loops).
    reductions: int = 0
    #: Variant-farm accounting: micro-calibrations this run performed
    #: (full + quick) and decisions served from a pinned manifest entry
    #: with zero re-measurement.
    calibrations: int = 0
    pinned_decisions: int = 0

    @property
    def variants(self) -> list[str]:
        """Distinct variant-farm builds the run's dispatches executed."""
        return sorted({d.variant for d in self.dispatches if d.variant})

    @property
    def certificates(self) -> list:
        """Runtime certificates recorded on the safety report (may be [])."""
        report = self.safety
        return list(getattr(report, "dynamic", ()) or ())

    @property
    def claims(self) -> int:
        return sum(d.claims for d in self.dispatches)

    @property
    def lock_ops(self) -> int:
        return sum(d.lock_ops for d in self.dispatches)

    @property
    def total_iterations(self) -> int:
        return sum(d.total_iterations for d in self.dispatches)

    @property
    def chunk_lang(self) -> str:
        """Aggregate chunk language across dispatches
        (``c``/``numpy``/``py``/``mixed``)."""
        langs = {d.chunk_lang for d in self.dispatches}
        if not langs:
            return "py"
        if len(langs) == 1:
            return langs.pop()
        return "mixed"


def _dispatchable(loop: Loop) -> bool:
    """A loop we can hand to workers: DOALL with unit step."""
    return loop.is_doall and isinstance(loop.step, Const) and loop.step.value == 1


def _contains_dispatchable(stmt: Stmt) -> bool:
    """Does this statement tree contain any dispatchable DOALL?"""
    if isinstance(stmt, Loop):
        return _dispatchable(stmt) or _contains_dispatchable(stmt.body)
    if isinstance(stmt, Block):
        return any(_contains_dispatchable(s) for s in stmt.stmts)
    if isinstance(stmt, If):
        return _contains_dispatchable(stmt.then) or _contains_dispatchable(
            stmt.orelse
        )
    return False


def _dispatchable_loops(stmt: Stmt) -> list[Loop]:
    """Every loop :func:`_exec_hybrid` would dispatch, in program order.

    Mirrors the executor's traversal: a dispatchable loop is a leaf (its
    body is never searched — workers own it), everything else recurses.
    """
    if isinstance(stmt, Loop):
        if _dispatchable(stmt):
            return [stmt]
        return _dispatchable_loops(stmt.body)
    if isinstance(stmt, Block):
        return [lp for s in stmt.stmts for lp in _dispatchable_loops(s)]
    if isinstance(stmt, If):
        return _dispatchable_loops(stmt.then) + _dispatchable_loops(stmt.orelse)
    return []


def _check_dispatchable(proc: Procedure) -> None:
    """Raise :class:`ParallelDispatchError` unless something can go parallel."""
    if not _contains_dispatchable(proc.body):
        raise ParallelDispatchError(
            f"procedure {proc.name!r} has no dispatchable unit-step DOALL "
            "(coalesce it first, or run the serial backend)"
        )


# ---------------------------------------------------------------------------
# Dispatch preparation (shared by the spawn and pool engines)
# ---------------------------------------------------------------------------


@dataclass
class _DispatchCaches:
    """Per-run memoization of everything a dispatch recomputes needlessly.

    The same ``Loop`` object is dispatched once per serial-outer iteration
    in a hybrid program; its chunk source, parameter order, and (for a
    fixed trip count) its scheduling plan are identical every time.  Keys
    use object identity — valid for the lifetime of one run, which is the
    lifetime of this cache.

    Behind the per-run identity memo sits the on-disk artifact cache
    (kind ``"chunk"``): generated chunk sources are keyed by the printed
    loop (variable, bounds, *and* body) plus the calling convention, so
    repeated runs of the same program — across processes, or through the
    server — reuse one generated source.  The store is resolved lazily
    from the process default; disabling the default cache disables this
    layer too.
    """

    source: dict = field(default_factory=dict)
    plans: dict = field(default_factory=dict)
    kernels: dict = field(default_factory=dict)
    np_chunks: dict = field(default_factory=dict)
    #: id(loop) -> :class:`_ReductionPlan` | None (not a reduction).
    reductions: dict = field(default_factory=dict)
    #: id(stmt) -> compiled serial-residue entry | False (interpret).
    residues: dict = field(default_factory=dict)
    store: object = "default"  # resolved on first use
    #: The run's :class:`repro.tuning.calibrate.DispatchTuner` (None for
    #: the legacy fixed-default path).
    tuner: object = None

    def _store(self):
        if self.store == "default":
            self.store = resolve_cache("default")
        return self.store

    def chunk_source(
        self, proc: Procedure, loop: Loop, extra: tuple[str, ...]
    ) -> tuple[str, str, list[str]]:
        key = (id(loop), extra)
        hit = self.source.get(key)
        if hit is None:
            fname = f"{proc.name}__chunk"
            scalar_order = list(proc.scalars) + list(extra)

            def generate() -> str:
                return (
                    _chunk_source_with_extras(proc, loop, extra)
                    if extra
                    else generate_chunk_source(proc, loop=loop)
                )

            store = self._store()
            if store is None:
                source = generate()
            else:
                # The printed loop covers var, bounds, and body — two
                # loops that collide here generate identical chunk
                # sources, so a collision is harmless by construction.
                ckey = artifact_key(
                    "chunk",
                    loop=to_source(loop),
                    name=fname,
                    arrays=list(proc.arrays),
                    scalars=scalar_order,
                )
                source = store.memo_text(ckey, "chunk.py", generate)
            hit = self.source[key] = (source, fname, scalar_order)
        return hit

    def chunk_kernel(
        self,
        proc: Procedure,
        loop: Loop,
        extra: tuple[str, ...],
        env: Mapping[str, int | float],
        variant=None,
    ) -> tuple[str, str, tuple[str, ...], tuple[str, ...]] | None:
        """Compiled C kernel for this loop shape, or None (stay on Python).

        Returns ``(so_path, fname, sig, scalar_types)`` — everything the
        job descriptor needs for the native path.  Keyed by loop identity
        plus the *C types* of the live scalar values (a hybrid program can
        feed the same loop integer scalars on one dispatch and serially
        computed floats on the next — those are different kernels) plus
        the farm variant: ``variant`` (a
        :class:`repro.tuning.variants.Variant`) selects the compiler,
        flag set, and — for the OpenMP variants — the in-chunk
        ``parallel for`` body; None means the pre-farm default build.
        Any codegen or compile failure is memoized as None, so a shape
        that cannot go native costs one attempt per run, not one per
        dispatch.

        Behind the per-run memo, :func:`compile_chunk_library` is
        content-addressed in the artifact cache: across processes and runs
        each kernel build is compiled exactly once.
        """
        scalar_order = list(proc.scalars) + list(extra)
        types = tuple(
            "double"
            if isinstance(env[s], (float, np.floating))
            else "long"
            for s in scalar_order
        )
        key = (id(loop), extra, types, variant.name if variant else None)
        if key in self.kernels:
            return self.kernels[key]
        fname = f"{proc.name}__chunk"
        try:
            widened = Procedure(
                proc.name, proc.body, proc.arrays,
                tuple(proc.scalars) + extra,
            )
            source = generate_chunk_c(
                widened,
                loop=loop,
                name=fname,
                scalar_types=dict(zip(scalar_order, types)),
                omp=bool(variant and variant.omp),
            )
            build = {}
            if variant is not None:
                build = dict(
                    cc=variant.cc, optimize=variant.optimize,
                    omp=variant.omp,
                )
            so_path, _ = compile_chunk_library(
                source, fname, cache=self._store(), **build
            )
            sig: list[str] = []
            for rank in proc.arrays.values():
                sig.append("ptr")
                sig.extend(["long"] * rank)
            sig.extend(types)
            hit = (so_path, fname, tuple(sig), types)
        except Exception:
            hit = None
        self.kernels[key] = hit
        return hit

    def numpy_chunk(
        self, proc: Procedure, loop: Loop, extra: tuple[str, ...]
    ) -> tuple[str, str] | None:
        """Whole-slice numpy chunk source, or None (shape refused).

        Returns ``(np_source, np_fname)``.  Refusals — shapes outside
        :mod:`repro.codegen.npgen`'s vectorization-safety rules — are
        memoized per run, and accepted sources are disk-memoized under
        kind ``"chunk_numpy"`` like the Python chunk source.
        """
        key = (id(loop), extra)
        if key in self.np_chunks:
            return self.np_chunks[key]
        try:
            widened = Procedure(
                proc.name, proc.body, proc.arrays,
                tuple(proc.scalars) + extra,
            )
            fname = f"{proc.name}__chunk_np"

            def generate() -> str:
                return generate_chunk_numpy(widened, loop=loop, name=fname)

            store = self._store()
            if store is None:
                source = generate()
            else:
                ckey = artifact_key(
                    "chunk_numpy",
                    loop=to_source(loop),
                    name=fname,
                    arrays=list(proc.arrays),
                    scalars=list(proc.scalars) + list(extra),
                )
                source = store.memo_text(ckey, "chunk_np.py", generate)
            hit = (source, fname)
        except Exception:
            hit = None
        self.np_chunks[key] = hit
        return hit

    def plan_for(
        self,
        policy: SchedulingPolicy | str,
        n: int,
        workers: int,
        chunk: int | None,
    ):
        key = (
            policy if isinstance(policy, str) else id(policy),
            n,
            workers,
            chunk,
        )
        hit = self.plans.get(key)
        if hit is None:
            hit = self.plans[key] = policy_plan(policy, n, workers, chunk)
        return hit


def _chunk_source_with_extras(
    proc: Procedure, loop: Loop, extra: tuple[str, ...]
) -> str:
    """Chunk source whose parameter list also carries env-local scalars."""
    widened = Procedure(
        proc.name, proc.body, proc.arrays, tuple(proc.scalars) + extra
    )
    return generate_chunk_source(widened, loop=loop)


def _empty_result(
    loop: Loop, lo: int, hi: int, workers: int, policy: SchedulingPolicy | str
) -> ParallelRunResult:
    name = policy if isinstance(policy, str) else policy.name
    return ParallelRunResult(
        loop.var, lo, hi, workers, name, 0.0, [0] * workers, 0
    )


def _build_job(
    proc: Procedure,
    loop: Loop,
    pool: SharedArrayPool,
    env: Mapping[str, int | float],
    plan,
    lo: int,
    batch: int,
    log_events: bool,
    caches: _DispatchCaches,
    chunk_lang: str,
    speculate: dict | None = None,
    decision=None,
    extra_specs: list | None = None,
    extra_views: Mapping[str, np.ndarray] | None = None,
) -> dict:
    """The picklable job descriptor both worker flavors execute.

    The Python chunk source is always present (the safety net every
    fallback lands on).  When ``chunk_lang == "c"`` and the shape compiles
    — every array float64 C-contiguous at its declared rank, codegen and
    the compiler both succeed — the descriptor also carries the native
    kernel (``c_so``/``c_fname``/``c_sig``/``c_scalar_types``); when
    ``chunk_lang == "numpy"`` and the shape passes the vectorization
    rules it carries the whole-slice chunk (``np_source``/``np_fname``);
    otherwise the dispatch degrades to Python and the fallback is counted
    in metrics.  ``job["variant"]`` names the farm build attached.

    A pinned/measured ``decision``
    (:class:`repro.tuning.calibrate.TuningDecision`) overrides the build:
    its variant selects both the chunk language and — for C variants —
    the compiler, flag set, and in-chunk OpenMP body.

    A speculative dispatch instead ships the dispatched ``Loop`` itself
    plus shadow-segment specs and the written→shadow alias map: workers
    run the recording interpreter against the shadows (chunk kernels
    cannot log element accesses), so the chunk source is ignored and the
    native path is skipped.

    ``extra_specs``/``extra_views`` ship side-channel arrays that live
    outside the main pool — the reduction engine's per-dispatch partial
    accumulators.  They extend ``job["specs"]`` (workers attach them on
    demand) and participate in the native-path eligibility check, but are
    never copied back through the main pool.
    """
    extra = tuple(
        sorted(k for k in env if k not in proc.scalars and k != loop.var)
    )
    source, fname, scalar_order = caches.chunk_source(proc, loop, extra)
    job = {
        "source": source,
        "fname": fname,
        "specs": pool.specs(),
        "array_order": list(proc.arrays),
        "scalar_order": scalar_order,
        "scalars": {name: env[name] for name in scalar_order},
        "plan": plan,
        "lo": lo,
        "batch": batch,
        "log_events": log_events,
        "variant": "py",
    }
    if extra_specs:
        job["specs"] = list(job["specs"]) + list(extra_specs)
    if speculate is not None:
        job["specs"] = list(job["specs"]) + list(speculate["specs"])
        job["speculate"] = {
            "loop": speculate["loop"],
            "written": tuple(speculate["written"]),
            "aliases": dict(speculate["aliases"]),
        }
        return job
    variant = None
    lang = chunk_lang
    if decision is not None:
        try:
            variant = variant_by_name(decision.variant)
            lang = variant.lang
        except ValueError:
            variant = None
    if lang == "c":
        views = dict(pool.views)
        if extra_views:
            views.update(extra_views)
        eligible = all(
            a in views
            and views[a].dtype == np.float64
            and views[a].flags["C_CONTIGUOUS"]
            and views[a].ndim == rank
            for a, rank in proc.arrays.items()
        )
        kernel = (
            caches.chunk_kernel(proc, loop, extra, env, variant=variant)
            if eligible
            else None
        )
        if kernel is not None:
            so_path, c_fname, sig, scalar_types = kernel
            job["chunk_lang"] = "c"
            job["c_so"] = so_path
            job["c_fname"] = c_fname
            job["c_sig"] = sig
            job["c_scalar_types"] = scalar_types
            job["variant"] = (variant or default_variant("c")).name
        else:
            record_chunk_fallback()
    elif lang == "numpy":
        npk = caches.numpy_chunk(proc, loop, extra)
        if npk is not None:
            np_source, np_fname = npk
            job["chunk_lang"] = "numpy"
            job["np_source"] = np_source
            job["np_fname"] = np_fname
            job["variant"] = "numpy"
        else:
            record_chunk_fallback()
    return job


def _resolve_claim_batch(
    requested, decision, plan, n: int, active: int
) -> int:
    """Resolve ``claim_batch`` (int or ``"auto"``) to the value workers use.

    Explicit integers pass through (floored at 1).  ``"auto"`` takes the
    calibrated batch when a decision carries one — clamped so this
    dispatch still gives every worker at least one claim round — and
    otherwise a conservative load-balance heuristic.  GSS and static
    plans never batch.
    """
    if requested != "auto":
        return max(1, int(requested))
    if plan.rule is None or plan.rule[0] == "gss":
        return 1
    per_claim = 1 if plan.rule[0] == "unit" else max(1, plan.rule[1])
    chunks = max(1, -(-n // per_claim))
    cap = max(1, chunks // max(1, active))
    if decision is not None and decision.claim_batch:
        return max(1, min(decision.claim_batch, cap))
    return max(1, min(64, chunks // (max(1, active) * 8), cap))


def _finalize_result(
    results: Mapping[int, tuple],
    loop: Loop,
    lo: int,
    hi: int,
    n: int,
    active: int,
    plan,
    t_base: float,
) -> ParallelRunResult:
    """Fold per-worker result messages into one :class:`ParallelRunResult`."""
    wall = time.monotonic() - t_base
    per_worker = [0] * active
    claims = 0
    lock_ops = 0
    langs: set[str] = set()
    events: list[ClaimEvent] = []
    spec_logs: list = []
    for wid, msg in results.items():
        _, _, iters, wclaims, wlocks, wevents, wlang, wextra = msg
        langs.add(wlang)
        spec_logs.extend(wextra.get("spec_log", ()))
        if wid < active:
            per_worker[wid] = iters
        elif iters:  # pragma: no cover - plan contract violated
            raise ParallelError(
                f"idle worker {wid} executed {iters} iterations"
            )
        claims += wclaims
        lock_ops += wlocks
        for (clo, chi, t0, t1, t2) in wevents:
            events.append(
                ClaimEvent(wid, clo, chi, t0 - t_base, t1 - t_base, t2 - t_base)
            )
    if sum(per_worker) != n:
        raise ParallelError(
            f"claim accounting violated: {sum(per_worker)} iterations "
            f"executed for a range of {n}"
        )
    events.sort(key=lambda e: (e.worker, e.t_claim))
    if not langs:
        chunk_lang = "py"
    elif len(langs) == 1:
        chunk_lang = next(iter(langs))
    else:
        chunk_lang = "mixed"
    spec_logs.sort(key=lambda log: (log[0], log[1]))
    return ParallelRunResult(
        loop.var,
        lo,
        hi,
        active,
        plan.name,
        wall,
        per_worker,
        claims,
        events,
        lock_ops=lock_ops,
        chunk_lang=chunk_lang,
        spec_logs=spec_logs,
    )


# ---------------------------------------------------------------------------
# Dispatch engines
# ---------------------------------------------------------------------------


def _tuned_decision(
    caches: _DispatchCaches,
    proc: Procedure,
    loop: Loop,
    env: Mapping[str, int | float],
    views: Mapping[str, np.ndarray],
    plan,
    n: int,
    workers: int,
    chunk: int | None,
    batch,
    speculate: dict | None,
):
    """Consult the run's tuner (never for speculative dispatches)."""
    if speculate is not None or caches.tuner is None:
        return None
    return caches.tuner.decision_for(
        proc, loop, env, views, plan, n, workers, chunk, caches, batch
    )


def _stamp_result(result: ParallelRunResult, job: dict, batch: int):
    """Record the dispatch's resolved batch and variant on its result.

    The variant reflects what workers *actually executed*: a fleet that
    degraded from the attached build (dlopen/bind failure) reports
    ``"py"`` and counts a chunk fallback, exactly like a parent-side
    degradation.
    """
    result.claim_batch = batch
    wanted = job.get("chunk_lang", "py")
    if result.chunk_lang == wanted:
        result.variant = job.get("variant", "py")
    elif result.chunk_lang == "py":
        result.variant = "py"
        record_chunk_fallback()  # worker-side dlopen/bind degradation
    else:
        record_chunk_fallback()  # mixed fleet: some workers degraded
    return result


def _dispatch_spawn(
    proc: Procedure,
    loop: Loop,
    pool: SharedArrayPool,
    env: Mapping[str, int | float],
    workers: int,
    policy: SchedulingPolicy | str,
    chunk: int | None,
    batch: int,
    deadline: float | None,
    log_events: bool,
    ctx: multiprocessing.context.BaseContext,
    caches: _DispatchCaches,
    chunk_lang: str = "py",
    speculate: dict | None = None,
    extra_specs: list | None = None,
    extra_views: Mapping[str, np.ndarray] | None = None,
) -> ParallelRunResult:
    """Run one DOALL on a freshly spawned fleet (the PR-1 baseline path)."""
    lo = eval_bound(loop.lower, env, pool.views, "loop lower bound")
    hi = eval_bound(loop.upper, env, pool.views, "loop upper bound")
    n = max(0, hi - lo + 1)
    if n == 0:
        return _empty_result(loop, lo, hi, workers, policy)
    active = max(1, min(workers, n))
    plan = caches.plan_for(policy, n, active, chunk)
    decision = _tuned_decision(
        caches, proc, loop, env, pool.views, plan, n, workers, chunk,
        batch, speculate,
    )
    batch_n = _resolve_claim_batch(batch, decision, plan, n, active)
    job = _build_job(
        proc, loop, pool, env, plan, lo, batch_n, log_events, caches,
        chunk_lang, speculate, decision, extra_specs, extra_views,
    )
    counter = (
        None if plan.static is not None else SharedClaimCounter(lo, hi, ctx)
    )
    q = ctx.Queue()
    procs = [
        ctx.Process(
            target=worker_main,
            args=(wid, job, counter, q),
            name=f"repro-par-{wid}",
            daemon=True,
        )
        for wid in range(active)
    ]
    t_base = time.monotonic()
    for p in procs:
        p.start()
    try:
        results = gather_results(procs, q, deadline, set(range(active)))
        raise_worker_crashes(results, procs)
    except BaseException:
        terminate_procs(procs)
        raise
    for p in procs:
        p.join(timeout=5.0)
    result = _finalize_result(results, loop, lo, hi, n, active, plan, t_base)
    return _stamp_result(result, job, batch_n)


def _dispatch_pool(
    wpool: WorkerPool,
    proc: Procedure,
    loop: Loop,
    env: Mapping[str, int | float],
    policy: SchedulingPolicy | str,
    chunk: int | None,
    batch: int,
    deadline: float | None,
    log_events: bool,
    caches: _DispatchCaches,
    chunk_lang: str = "py",
    speculate: dict | None = None,
    extra_specs: list | None = None,
    extra_views: Mapping[str, np.ndarray] | None = None,
) -> ParallelRunResult:
    """Run one DOALL on the persistent pool: a message, not a fork."""
    lo = eval_bound(loop.lower, env, wpool.views, "loop lower bound")
    hi = eval_bound(loop.upper, env, wpool.views, "loop upper bound")
    n = max(0, hi - lo + 1)
    if n == 0:
        # Nothing to do — and nothing sent: the pool idles through empty
        # ranges and stays usable for the next dispatch.
        return _empty_result(loop, lo, hi, wpool.workers, policy)
    active = max(1, min(wpool.workers, n))
    plan = caches.plan_for(policy, n, active, chunk)
    decision = _tuned_decision(
        caches, proc, loop, env, wpool.views, plan, n, wpool.workers,
        chunk, batch, speculate,
    )
    batch_n = _resolve_claim_batch(batch, decision, plan, n, active)
    job = _build_job(
        proc, loop, wpool.shared, env, plan, lo, batch_n, log_events,
        caches, chunk_lang, speculate, decision, extra_specs, extra_views,
    )
    t_base, results = wpool.dispatch(job, lo, hi, deadline)
    result = _finalize_result(results, loop, lo, hi, n, active, plan, t_base)
    return _stamp_result(result, job, batch_n)


# ---------------------------------------------------------------------------
# Reduction dispatch (recognized ``s := s ⊕ expr`` loops)
# ---------------------------------------------------------------------------

#: Upper bound on partial accumulators per reduction dispatch.  The chunk
#: grid is a pure function of the trip count (never the worker count), so
#: the folded result is deterministic across fleet sizes.
_RED_MAX_CHUNKS = 64

#: Finite identity constants for the derived init statement.  ``min`` and
#: ``max`` use ±float-max instead of ±inf — generated Python and C sources
#: cannot spell infinity as a literal — which folds exactly like the true
#: identity for any representable finite data.
_RED_IDENTITY: dict[str, float] = {
    "+": 0.0,
    "*": 1.0,
    "min": float(np.finfo(np.float64).max),
    "max": float(-np.finfo(np.float64).max),
}


@dataclass(frozen=True)
class _ReductionPlan:
    """Everything one recognized reduction loop needs to dispatch.

    ``origin`` is the loop as written (``s := s ⊕ expr``); ``proc`` /
    ``loop`` are the derived strip-mined form the workers actually
    execute; ``partial``/``chunks``/``stride`` name the partial array and
    the two symbolic grid scalars, so one cached chunk kernel serves
    every trip count.
    """

    reduction: Reduction
    origin: Loop
    proc: Procedure
    loop: Loop
    partial: str
    chunks: str
    stride: str


def _fresh_red_name(base: str, used: set[str]) -> str:
    name = base
    while name in used:
        name += "_"
    used.add(name)
    return name


def derive_reduction_dispatch(
    proc: Procedure, loop: Loop, red: Reduction
) -> _ReductionPlan:
    """Build the strip-mined partial-accumulator form of a reduction loop.

    The original ``for i = lo, hi: s := s ⊕ u(i)`` becomes::

        doall __rc = 0, __red_c - 1:
            __red_p(__rc) := identity
            for i = lo + __rc*__red_k, min(hi, lo + (__rc+1)*__red_k - 1):
                [if guard then] __red_p(__rc) := __red_p(__rc) ⊕ u(i)

    ``__red_c`` (chunk count) and ``__red_k`` (chunk stride) stay
    *symbolic* — shipped as env scalars per dispatch — so the generated
    chunk source, and therefore the compiled kernel, is one per loop
    shape rather than one per trip count.  The inner loop keeps the
    original induction variable, so ``u(i)`` and the guard need no
    renaming.  Each ``__rc`` owns exactly one partial element and a
    disjoint slice of the original range: the derived loop is race-free
    by construction (and the safety verifier can re-prove it).
    """
    used = set(proc.arrays) | set(proc.scalars)
    for s in walk_stmts(proc.body):
        if isinstance(s, Loop):
            used.add(s.var)
    for e in walk_exprs(proc.body):
        if isinstance(e, Var):
            used.add(e.name)
    partial = _fresh_red_name("__red_p", used)
    chunks = _fresh_red_name("__red_c", used)
    stride = _fresh_red_name("__red_k", used)
    rc = _fresh_red_name("__rc", used)

    pref = ArrayRef(partial, (Var(rc),))
    update = Assign(pref, BinOp(red.op, pref, red.update))
    body: Stmt = (
        update if red.guard is None else If(red.guard, Block((update,)))
    )
    inner_lo = loop.lower + Var(rc) * Var(stride)
    inner_hi = min_(loop.upper, loop.lower + (Var(rc) + 1) * Var(stride) - 1)
    inner = Loop(
        loop.var, inner_lo, inner_hi, Block((body,)), Const(1),
        LoopKind.SERIAL,
    )
    outer = Loop(
        rc, Const(0), Var(chunks) - 1,
        Block((Assign(pref, Const(_RED_IDENTITY[red.op])), inner)),
        Const(1), LoopKind.DOALL,
    )
    arrays = dict(proc.arrays)
    arrays[partial] = 1
    derived = Procedure(
        f"{proc.name}__red", Block((outer,)), arrays,
        tuple(proc.scalars) + (chunks, stride),
    )
    validate(derived)
    return _ReductionPlan(red, loop, derived, outer, partial, chunks, stride)


def _reduction_plan(
    caches: _DispatchCaches, proc: Procedure, loop: Loop
) -> _ReductionPlan | None:
    """The cached reduction plan for ``loop``, or None (dispatch normally).

    Recognition runs once per loop identity per run; a loop that is not
    the reduction idiom memoizes None and costs nothing on re-dispatch.
    """
    key = id(loop)
    if key not in caches.reductions:
        red = recognize_reduction(loop)
        if red is None or red.scalar in proc.arrays:
            caches.reductions[key] = None
        else:
            try:
                caches.reductions[key] = derive_reduction_dispatch(
                    proc, loop, red
                )
            except Exception:
                caches.reductions[key] = None
    return caches.reductions[key]


def _reduction_grid(n: int) -> tuple[int, int]:
    """``(chunk_count, chunk_stride)`` for a trip count of ``n``.

    A pure function of ``n`` alone: the same input always folds through
    the same partials in the same order, whatever the worker count.
    """
    n_chunks = max(1, min(_RED_MAX_CHUNKS, n))
    return n_chunks, -(-n // n_chunks)


def _dispatch_reduction(
    plan: _ReductionPlan,
    env: dict,
    views: Mapping[str, np.ndarray],
    workers: int,
    policy: SchedulingPolicy | str,
    engine,
) -> ParallelRunResult:
    """Run a recognized reduction through partial accumulators + ordered fold.

    ``engine(env2, extra_specs, extra_views)`` must dispatch the derived
    loop through a normal engine with the partial array attached as a
    side-channel shared segment.  On return the parent folds the partials
    in ascending chunk order, seeded with the incoming accumulator value,
    and writes the result back into ``env`` — exactly the serial
    association ``((s ⊕ p₁) ⊕ p₂) …`` with ``p_c = ((id ⊕ u_{c,1}) ⊕ …)``,
    which is bit-identical to serial execution whenever ⊕ is exact on the
    data (min/max always; float +/* on integer-valued data).

    The partial array lives in its own :class:`SharedArrayPool`, shipped
    via the job's extra specs and unlinked before this function returns —
    it never flows through the main pool's ``copy_back``.
    """
    red = plan.reduction
    if red.scalar not in env:
        raise ParallelDispatchError(
            f"reduction scalar {red.scalar!r} has no incoming value"
        )
    lo = eval_bound(plan.origin.lower, env, views, "loop lower bound")
    hi = eval_bound(plan.origin.upper, env, views, "loop upper bound")
    n = max(0, hi - lo + 1)
    result = _empty_result(plan.origin, lo, hi, workers, policy)
    if n > 0:
        n_chunks, stride = _reduction_grid(n)
        seed = np.full(n_chunks, _RED_IDENTITY[red.op], dtype=np.float64)
        env2 = dict(env)
        env2[plan.chunks] = n_chunks
        env2[plan.stride] = stride
        with SharedArrayPool({plan.partial: seed}) as ppool:
            result = engine(env2, ppool.specs(), ppool.views)
            parts = ppool.views[plan.partial][:n_chunks].tolist()
        acc = env[red.scalar]
        for part in parts:
            acc = apply_binop(red.op, acc, part)
        env[red.scalar] = acc
    result.reduction_scalar = red.scalar
    result.reduction_value = float(env[red.scalar])
    record_reduction_dispatch()
    return result


def _with_reduction(dispatch_raw, proc, caches, views, workers, policy, out):
    """Wrap an engine closure so recognized reductions take the partial path.

    ``dispatch_raw(dproc, dloop, env, speculate, extra_specs,
    extra_views)`` is the underlying engine.  The returned closure has the
    ``dispatch(loop, env, speculate=None)`` signature
    :func:`_exec_hybrid` expects.  Routing is independent of the safety
    mode: a DOALL-tagged reduction loop would otherwise dispatch with the
    accumulator silently frozen at its incoming value (each worker holds
    a private scalar copy), so the reduction engine is a correctness
    matter, not an optimization.  Speculative dispatches never take this
    path — a blocked loop is by definition not a proven reduction.
    """

    def dispatch(
        loop: Loop, env, speculate: dict | None = None
    ) -> ParallelRunResult:
        if speculate is None:
            plan = _reduction_plan(caches, proc, loop)
            if plan is not None:
                result = _dispatch_reduction(
                    plan, env, views, workers, policy,
                    lambda env2, specs, pviews: dispatch_raw(
                        plan.proc, plan.loop, env2, None, specs, pviews
                    ),
                )
                if out is not None:
                    out.reductions += 1
                return result
        return dispatch_raw(proc, loop, env, speculate, None, None)

    return dispatch


# ---------------------------------------------------------------------------
# Speculative dispatch (safety="speculate")
# ---------------------------------------------------------------------------

#: Process-global counter making shadow alias names unique per dispatch
#: occurrence, so a persistent worker never mistakes a stale shadow
#: attachment for the current one.
_SPEC_TOKEN = itertools.count()


def _speculative_dispatch(dispatch_fn, loop, env, views, written):
    """Dispatch ``loop`` into shadow copies of its written arrays.

    ``dispatch_fn(info)`` must run the loop through a normal engine with
    the speculation descriptor attached (workers then execute the
    recording interpreter against the shadows).  The gathered chunk logs
    are validated for cross-chunk conflicts; on success the shadows are
    committed into ``views`` by bulk copy-back, on failure ``views`` are
    left exactly as before the dispatch (the caller retries serially).
    Returns ``(result, validation)``.  The shadow segments are unlinked
    on every exit path.
    """
    token = next(_SPEC_TOKEN)
    aliases = {name: shadow_alias(name, token) for name in written}
    shadow = SharedArrayPool({aliases[name]: views[name] for name in written})
    try:
        info = {
            "loop": loop,
            "written": tuple(written),
            "aliases": aliases,
            "specs": shadow.specs(),
        }
        result = dispatch_fn(info)
        validation = validate_chunk_logs(result.spec_logs)
        if validation.ok:
            for name in written:
                np.copyto(views[name], shadow.views[aliases[name]])
        return result, validation
    finally:
        shadow.close()


def _speculation_plans(
    loops, blocked: frozenset[int], report
) -> dict[int, SpecPlan]:
    """The per-loop speculation plan for every statically-blocked loop."""
    plans: dict[int, SpecPlan] = {}
    for lp in loops:
        if id(lp) in blocked:
            verdict = report.by_id.get(id(lp)) if report is not None else None
            plans[id(lp)] = speculation_plan(lp, verdict)
    return plans


def _inspect_certificate(loop, insp) -> SpecCertificate:
    return SpecCertificate(
        loop_var=loop.var,
        mode="inspector",
        status="proven-dynamic" if insp.proven else "refuted",
        iterations=insp.iterations,
        conflicts=len(insp.conflicts),
        wall_s=insp.wall_s,
        detail=insp.describe(),
    )


# ---------------------------------------------------------------------------
# Hybrid program execution (serial segments + nested dispatch)
# ---------------------------------------------------------------------------


_MISSING = object()

#: Namespace for compiled serial-residue functions (mirrors the chunk
#: compiler's: the IR intrinsics plus the builtins codegen emits).
_RESIDUE_NAMESPACE = {**INTRINSICS, "min": min, "max": max, "range": range}


def _compile_residue(stmt: Loop, env: Mapping[str, int | float]):
    """Compile one dispatch-free serial loop into a callable, or ``False``.

    Wraps the subtree in a throwaway procedure, generates Python with
    :func:`repro.codegen.pygen.generate_source` (the backend the test
    suite holds bit-identical to the interpreter), and appends a return
    of every scalar the subtree writes so the parent can fold the
    results back into ``env``.  Returns ``(fn, array_order, params,
    returns)`` or ``False`` when the shape cannot be compiled (the
    caller interprets instead).
    """
    try:
        refs: dict[str, int] = {}
        for e in walk_exprs(stmt):
            if isinstance(e, ArrayRef):
                refs.setdefault(e.name, len(e.indices))
        bound = {s.var for s in walk_stmts(stmt) if isinstance(s, Loop)}
        names = {e.name for e in walk_exprs(stmt) if isinstance(e, Var)}
        writes = {
            s.target.name
            for s in walk_stmts(stmt)
            if isinstance(s, Assign) and isinstance(s.target, Var)
        } - bound
        params = tuple(sorted((names - bound - set(refs)) & set(env)))
        returns = tuple(sorted(writes))
        wrapper = Procedure("__residue", Block((stmt,)), refs, params)
        source = generate_source(wrapper, name="__residue")
        source += "    return (" + "".join(f"{r}, " for r in returns) + ")\n"
        namespace = dict(_RESIDUE_NAMESPACE)
        code = compile(source, filename="<residue>", mode="exec")
        exec(code, namespace)
        return namespace["__residue"], tuple(refs), params, returns
    except Exception:
        return False


def _make_residue_runner(caches: _DispatchCaches, interp, views):
    """Compiled execution of dispatch-free serial loops in the parent.

    The serial residue of a fissioned program (the cyclic-SCC sub-loops)
    runs in the parent; driving it through the tree interpreter would
    dominate the wall clock and bury the dispatched majority's speedup.
    Each residue loop compiles once per run (generated Python, the same
    backend E10 proves bit-identical to the interpreter) and falls back
    to the interpreter on any failure — compile or call.
    """

    def run(stmt: Loop, env: dict) -> None:
        entry = caches.residues.get(id(stmt))
        if entry is None:
            entry = caches.residues[id(stmt)] = _compile_residue(stmt, env)
        if entry is not False:
            fn, array_order, params, returns = entry
            try:
                args = [views[a] for a in array_order]
                args += [env[p] for p in params]
                out_vals = fn(*args)
            except Exception:
                caches.residues[id(stmt)] = False
            else:
                for name, val in zip(returns, out_vals):
                    env[name] = val
                return
        interp._exec(stmt, env, views)

    return run


def _exec_hybrid(
    stmt: Stmt,
    dispatch,
    interp: Interpreter,
    env: dict[str, int | float],
    views: Mapping[str, np.ndarray],
    out: ParallelProcedureResult,
    deadline: float | None,
    blocked: frozenset[int] = frozenset(),
    on_blocked=None,
    residue=None,
) -> None:
    """Execute a statement tree, dispatching every reachable DOALL.

    Serial loops *containing* dispatchable DOALLs are driven by the
    parent (their control flow must interleave with dispatches — the
    pivot loop of Gauss–Jordan); everything else falls through to the
    interpreter over the shared views in one call.  Loops whose ``id`` is
    in ``blocked`` (statically unproven) go to ``on_blocked``: under
    ``safety="enforce"`` that runs them serially in the parent and counts
    the refusal; under ``"speculate"`` it tries the inspector or a
    speculative dispatch first (see :func:`_make_blocked_handler`).
    Dispatch-free serial loops go to ``residue`` when provided — the
    compiled serial-residue runner (:func:`_make_residue_runner`).
    """
    if on_blocked is None:
        on_blocked = _serial_blocked_handler(interp, views, out)
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            _exec_hybrid(
                s, dispatch, interp, env, views, out, deadline, blocked,
                on_blocked, residue,
            )
        return
    if deadline is not None and time.monotonic() > deadline:
        raise ParallelTimeoutError(
            "parallel run exceeded its deadline in a serial segment"
        )
    if isinstance(stmt, Loop) and _dispatchable(stmt):
        if id(stmt) in blocked:
            on_blocked(stmt, env)
            return
        out.dispatches.append(dispatch(stmt, env))
        return
    if isinstance(stmt, Loop) and _contains_dispatchable(stmt.body):
        lo = eval_bound(stmt.lower, env, views, "loop lower bound")
        hi = eval_bound(stmt.upper, env, views, "loop upper bound")
        st = eval_bound(stmt.step, env, views, "loop step")
        if st <= 0:
            raise InterpreterError(
                f"loop {stmt.var!r}: non-positive step {st}"
            )
        saved = env.get(stmt.var, _MISSING)
        for value in range(lo, hi + 1, st):
            env[stmt.var] = value
            _exec_hybrid(
                stmt.body, dispatch, interp, env, views, out, deadline,
                blocked, on_blocked, residue,
            )
        if saved is _MISSING:
            env.pop(stmt.var, None)
        else:
            env[stmt.var] = saved
        out.serial_stmts += 1
        return
    if isinstance(stmt, If) and _contains_dispatchable(stmt):
        cond = interp._eval(stmt.cond, env, views)
        branch = stmt.then if cond else stmt.orelse
        _exec_hybrid(
            branch, dispatch, interp, env, views, out, deadline, blocked,
            on_blocked, residue,
        )
        out.serial_stmts += 1
        return
    if isinstance(stmt, Loop) and residue is not None:
        residue(stmt, env)
        out.serial_stmts += 1
        return
    interp._exec(stmt, env, views)
    out.serial_stmts += 1


def _serial_blocked_handler(interp, views, out):
    """Enforce-mode handling of a blocked loop: serial in the parent."""

    def handler(stmt: Loop, env: dict[str, int | float]) -> None:
        record_safety_block()
        out.blocked_dispatches += 1
        interp._exec(stmt, env, views)
        out.serial_stmts += 1

    return handler


def _make_blocked_handler(
    mode: str,
    plans: Mapping[int, SpecPlan],
    report,
    interp: Interpreter,
    views: Mapping[str, np.ndarray],
    out: ParallelProcedureResult,
    dispatch,
) -> object:
    """The per-dispatch policy for statically-unproven loops.

    Enforce (and any plan-less loop under speculate) drops to serial.
    Speculate routes by plan: inspector-eligible loops are addressed
    first and dispatched normally when proven; value-carrying loops run
    speculatively into shadows with commit-or-rollback; scalar-hazard
    loops are refused to serial.  Every dynamic decision leaves a
    :class:`SpecCertificate` on the safety report.
    """
    serial = _serial_blocked_handler(interp, views, out)
    if mode != "speculate":
        return serial

    def handler(stmt: Loop, env: dict[str, int | float]) -> None:
        plan = plans.get(id(stmt))
        if plan is None or plan.action == "refuse":
            serial(stmt, env)
            return
        if plan.action == "inspect":
            record_speculate(inspected=1)
            out.inspected += 1
            insp = inspect_dispatch(stmt, env, views)
            if report is not None:
                report.dynamic.append(_inspect_certificate(stmt, insp))
            if not insp.proven:
                serial(stmt, env)
                return
            record_speculate(proven_dynamic=1)
            out.proven_dynamic += 1
            result = dispatch(stmt, env)
            result.speculation = "proven-dynamic"
            out.dispatches.append(result)
            return
        # plan.action == "speculate"
        record_speculate(speculated=1)
        out.speculated += 1
        t0 = time.monotonic()
        result, validation = _speculative_dispatch(
            lambda info: dispatch(stmt, env, speculate=info),
            stmt, env, views, plan.written,
        )
        status = "committed" if validation.ok else "rolled-back"
        result.speculation = status
        out.dispatches.append(result)
        if report is not None:
            report.dynamic.append(
                SpecCertificate(
                    loop_var=stmt.var,
                    mode="speculative",
                    status=status,
                    iterations=result.total_iterations,
                    chunks=validation.chunks,
                    conflicts=len(validation.conflicts),
                    wall_s=time.monotonic() - t0,
                    detail=validation.describe(),
                )
            )
        if validation.ok:
            record_speculate(committed=1)
            out.committed += 1
        else:
            # Misspeculation: the shadows are gone, the primaries
            # untouched — retry serially for the exact serial result.
            record_speculate(rolled_back=1)
            out.rolled_back += 1
            interp._exec(stmt, env, views)
            out.serial_stmts += 1

    return handler


# ---------------------------------------------------------------------------
# Public drivers
# ---------------------------------------------------------------------------


def run_parallel_doall(
    proc: Procedure,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, int | float] | None = None,
    workers: int = 4,
    policy: SchedulingPolicy | str = "gss",
    chunk: int | None = None,
    timeout: float | None = None,
    log_events: bool = True,
    method: str | None = None,
    reuse_pool: bool = False,
    claim_batch: int | str = "auto",
    chunk_lang: str | None = None,
    safety: str | None = None,
    variants=None,
    calibrate: bool | None = None,
) -> ParallelRunResult:
    """Execute a single-DOALL procedure across worker processes.

    The procedure body must be exactly one top-level unit-step DOALL (what
    :func:`repro.transforms.coalesce.coalesce_procedure` produces).  On
    success the caller's ``arrays`` hold the results; on any failure they
    are untouched (workers mutate only the shared copies).  A single
    dispatch gains nothing from pool reuse, so ``reuse_pool`` defaults to
    False here; pass True to exercise the pool engine.

    ``chunk_lang`` selects how workers execute claimed blocks: ``"c"``
    (native kernel via ctypes — the default when a compiler is available),
    ``"numpy"`` (whole-slice vectorized — the compiler-less default),
    ``"py"`` (generated Python), or ``None``/``"auto"``.  Faster paths
    degrade automatically on any codegen, compile, or load failure; the
    language actually used is reported in ``result.chunk_lang``.

    ``claim_batch`` is an explicit chunks-per-critical-section count or
    ``"auto"`` (default): unit/fixed dispatches size the batch from the
    measured per-chunk service time — a bounded first-use
    micro-calibration whose decision is pinned in the artifact cache, so
    warm runs re-measure nothing (see :mod:`repro.tuning.calibrate`).
    ``variants`` restricts the farm to named builds
    (:data:`repro.tuning.variants.VARIANTS`; comma string or list), and
    ``calibrate=True`` runs a full variant sweep — measure every
    available build of the chunk shape, dispatch the winner — while
    ``calibrate=False`` disables measurement entirely.  The build
    executed is reported in ``result.variant`` and the resolved batch in
    ``result.claim_batch``.

    ``safety`` selects the chunk-safety mode (see :func:`resolve_safety`;
    default ``"warn"``).  Under ``"enforce"`` a loop the verifier cannot
    prove race-free raises :class:`SafetyVerificationError` *before* any
    worker or shared segment is created.  Under ``"speculate"`` that loop
    gets a dynamic chance first: the runtime inspector certifies it when
    it can (normal dispatch, ``result.speculation == "proven-dynamic"``),
    otherwise the dispatch runs speculatively into shadow segments and is
    committed or — on a detected cross-chunk conflict — rolled back and
    re-run serially, leaving the caller's arrays bit-identical to a
    serial execution (``result.speculation`` is ``"committed"`` or
    ``"rolled-back"``).  Only a scalar-hazard loop (or an
    inspector-refuted one) still raises, exactly like enforce.
    """
    validate(proc)
    body = proc.body
    if len(body) != 1 or not isinstance(body.stmts[0], Loop):
        raise ParallelDispatchError(
            "procedure body must be a single loop (use run_parallel_procedure "
            "for mixed serial/parallel programs)"
        )
    loop = body.stmts[0]
    if not _dispatchable(loop):
        raise ParallelDispatchError(
            f"outer loop {loop.var!r} is not a unit-step DOALL"
        )
    mode = resolve_safety(safety)
    report, blocked = _safety_gate(proc, mode)
    env: dict[str, int | float] = dict(scalars or {})
    spec_plan: SpecPlan | None = None
    speculation_tag: str | None = None
    if id(loop) in blocked:
        if mode == "enforce":
            record_safety_block()
            raise SafetyVerificationError(
                f"safety=enforce refused to dispatch {proc.name!r}: "
                f"{_unproven_summary(report)}"
            )
        plan = speculation_plan(
            loop, report.by_id.get(id(loop)) if report is not None else None
        )
        if plan.action == "refuse":
            record_safety_block()
            raise SafetyVerificationError(
                f"safety=speculate refused to dispatch {proc.name!r}: "
                f"{plan.reason}"
            )
        if plan.action == "inspect":
            record_speculate(inspected=1)
            insp = inspect_dispatch(loop, env, arrays)
            if report is not None:
                report.dynamic.append(_inspect_certificate(loop, insp))
            if not insp.proven:
                record_safety_block()
                raise SafetyVerificationError(
                    f"safety=speculate: runtime inspector refuted dispatch "
                    f"of {proc.name!r}: {insp.describe()}"
                )
            record_speculate(proven_dynamic=1)
            speculation_tag = "proven-dynamic"
        else:
            spec_plan = plan
    if claim_batch != "auto":
        claim_batch = int(claim_batch)
    deadline = None if timeout is None else time.monotonic() + timeout
    caches = _DispatchCaches()
    lang = resolve_chunk_lang(chunk_lang)
    caches.tuner = make_tuner(lang, variants, calibrate)
    validation = None
    t_spec = time.monotonic()
    red_plan = _reduction_plan(caches, proc, loop)
    if reuse_pool:
        with WorkerPool(arrays, workers=workers, method=method) as wpool:
            if spec_plan is None:
                if red_plan is not None:
                    result = _dispatch_reduction(
                        red_plan, env, wpool.views, wpool.workers, policy,
                        lambda env2, specs, pviews: _dispatch_pool(
                            wpool, red_plan.proc, red_plan.loop, env2,
                            policy, chunk, claim_batch, deadline,
                            log_events, caches, lang, extra_specs=specs,
                            extra_views=pviews,
                        ),
                    )
                else:
                    result = _dispatch_pool(
                        wpool, proc, loop, env, policy, chunk, claim_batch,
                        deadline, log_events, caches, lang,
                    )
                wpool.copy_back(arrays)
            else:
                record_speculate(speculated=1)
                result, validation = _speculative_dispatch(
                    lambda info: _dispatch_pool(
                        wpool, proc, loop, env, policy, chunk, claim_batch,
                        deadline, log_events, caches, lang, speculate=info,
                    ),
                    loop, env, wpool.views, spec_plan.written,
                )
                if validation.ok:
                    wpool.copy_back(arrays)
    else:
        ctx = mp_context(method)
        with SharedArrayPool(arrays) as pool:
            if spec_plan is None:
                if red_plan is not None:
                    result = _dispatch_reduction(
                        red_plan, env, pool.views, workers, policy,
                        lambda env2, specs, pviews: _dispatch_spawn(
                            red_plan.proc, red_plan.loop, pool, env2,
                            workers, policy, chunk, claim_batch, deadline,
                            log_events, ctx, caches, lang,
                            extra_specs=specs, extra_views=pviews,
                        ),
                    )
                else:
                    result = _dispatch_spawn(
                        proc, loop, pool, env, workers, policy, chunk,
                        claim_batch, deadline, log_events, ctx, caches, lang,
                    )
                pool.copy_back(arrays)
            else:
                record_speculate(speculated=1)
                result, validation = _speculative_dispatch(
                    lambda info: _dispatch_spawn(
                        proc, loop, pool, env, workers, policy, chunk,
                        claim_batch, deadline, log_events, ctx, caches,
                        lang, speculate=info,
                    ),
                    loop, env, pool.views, spec_plan.written,
                )
                if validation.ok:
                    pool.copy_back(arrays)
    if validation is not None:
        status = "committed" if validation.ok else "rolled-back"
        result.speculation = status
        if report is not None:
            report.dynamic.append(
                SpecCertificate(
                    loop_var=loop.var,
                    mode="speculative",
                    status=status,
                    iterations=result.total_iterations,
                    chunks=validation.chunks,
                    conflicts=len(validation.conflicts),
                    wall_s=time.monotonic() - t_spec,
                    detail=validation.describe(),
                )
            )
        if validation.ok:
            record_speculate(committed=1)
        else:
            # Misspeculation: the caller's arrays were never touched —
            # re-run serially for the exact serial result.
            record_speculate(rolled_back=1)
            Interpreter()._exec(loop, dict(env), arrays)
    elif speculation_tag is not None:
        result.speculation = speculation_tag
    record_run(result)
    return result


def run_parallel_procedure(
    proc: Procedure,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, int | float] | None = None,
    workers: int = 4,
    policy: SchedulingPolicy | str = "gss",
    chunk: int | None = None,
    timeout: float | None = None,
    log_events: bool = True,
    method: str | None = None,
    reuse_pool: bool = True,
    claim_batch: int | str = "auto",
    pool: WorkerPool | None = None,
    chunk_lang: str | None = None,
    safety: str | None = None,
    variants=None,
    calibrate: bool | None = None,
    preloaded: bool = False,
) -> ParallelProcedureResult:
    """Execute a whole procedure, dispatching every reachable DOALL.

    Statements between DOALLs (the serial pivot loop of a hybrid program,
    scalar setup, non-unit-step loops) run in the parent over the same
    shared-memory views, so array state flows through the whole program
    without extra copies.  DOALLs nested under serial control flow are
    dispatched too — one dispatch per enclosing serial iteration, the
    paper's hybrid execution model.  Raises
    :class:`ParallelDispatchError` if there is nothing to dispatch — a
    purely serial program should use the serial backends instead of
    paying for a pool.

    With ``reuse_pool=True`` (default) one persistent worker fleet serves
    every dispatch; ``reuse_pool=False`` restores the spawn-per-dispatch
    baseline.  Passing an already-warm ``pool`` (the server's per-shape
    fleets) skips even the per-run spawn: the caller's arrays are loaded
    into the pool's shared views, the run dispatches through the resident
    workers, results are copied back, and the pool is left running for
    the next run.  The pool's array environment must match ``arrays`` by
    name and shape, and the caller must serialize concurrent runs on one
    pool.  ``preloaded=True`` additionally skips the load/copy-back pair
    for callers that stage data into ``pool.views`` themselves and read
    results straight out of them (the binary wire transport).

    ``chunk_lang``, ``claim_batch`` (default ``"auto"``), ``variants``,
    and ``calibrate`` behave exactly as in :func:`run_parallel_doall`;
    decisions are resolved per dispatched loop shape, so a hybrid program
    calibrates each of its DOALLs at most once per run and every later
    dispatch of the same shape reuses the pinned decision
    (``result.calibrations`` / ``result.pinned_decisions`` count both).

    ``safety`` selects the chunk-safety mode (default ``"warn"``: verify
    and report, dispatch everything).  Under ``"enforce"``, unproven
    loops execute serially in the parent instead of being dispatched
    (counted in ``result.blocked_dispatches``); when *no* dispatchable
    loop is proven, the run raises :class:`SafetyVerificationError`
    before any worker is created — a run that could only ever execute
    serially should not pay for a pool.  Under ``"speculate"``, unproven
    loops are inspected (dispatching with a certificate when proven) or
    run speculatively with commit/rollback; per-dispatch outcomes land in
    ``result.inspected`` / ``proven_dynamic`` / ``speculated`` /
    ``committed`` / ``rolled_back`` and certificates on the safety
    report.  The refuse-everything raise then only fires when every
    dispatchable loop has a scalar hazard no dynamic mode can fix.
    """
    validate(proc)
    _check_dispatchable(proc)
    mode = resolve_safety(safety)
    report, blocked = _safety_gate(proc, mode)
    plans: dict[int, SpecPlan] = {}
    if blocked:
        loops = _dispatchable_loops(proc.body)
        if mode == "speculate":
            plans = _speculation_plans(loops, blocked, report)
            workable = [
                lp
                for lp in loops
                if id(lp) not in blocked
                or plans[id(lp)].action != "refuse"
            ]
            if not workable:
                record_safety_block(len(loops))
                raise SafetyVerificationError(
                    f"safety=speculate refused every dispatch in "
                    f"{proc.name!r}: {_unproven_summary(report)}"
                )
        elif all(id(lp) in blocked for lp in loops):
            record_safety_block(len(loops))
            raise SafetyVerificationError(
                f"safety=enforce refused every dispatch in {proc.name!r}: "
                f"{_unproven_summary(report)}"
            )
    if claim_batch != "auto":
        claim_batch = int(claim_batch)
    env: dict[str, int | float] = dict(scalars or {})
    deadline = None if timeout is None else time.monotonic() + timeout
    t_start = time.monotonic()
    out = ParallelProcedureResult(
        0.0,
        reused_pool=reuse_pool or pool is not None,
        safety_mode=mode,
        safety=report,
    )
    interp = Interpreter()
    caches = _DispatchCaches()
    lang = resolve_chunk_lang(chunk_lang)
    caches.tuner = make_tuner(lang, variants, calibrate)
    if pool is not None:
        # ``preloaded=True`` is the zero-copy serving path: the caller has
        # already written the request data into ``pool.views`` (e.g. the
        # wire transport loading ``np.frombuffer`` views straight into the
        # shm segments) and will read results out of the views itself, so
        # the load/copy-back round trip through ``arrays`` is skipped.
        if not preloaded:
            pool.load(arrays)

        def raw(dproc, dloop, denv, speculate, extra_specs, extra_views):
            return _dispatch_pool(
                pool, dproc, dloop, denv, policy, chunk, claim_batch,
                deadline, log_events, caches, lang, speculate,
                extra_specs, extra_views,
            )

        dispatch = _with_reduction(
            raw, proc, caches, pool.views, pool.workers, policy, out
        )
        handler = _make_blocked_handler(
            mode, plans, report, interp, pool.views, out, dispatch
        )
        _exec_hybrid(
            proc.body, dispatch, interp, env, pool.views, out, deadline,
            blocked, handler, _make_residue_runner(caches, interp, pool.views),
        )
        if not preloaded:
            pool.copy_back(arrays)
    elif reuse_pool:
        with WorkerPool(arrays, workers=workers, method=method) as wpool:

            def raw(dproc, dloop, denv, speculate, extra_specs, extra_views):
                return _dispatch_pool(
                    wpool, dproc, dloop, denv, policy, chunk, claim_batch,
                    deadline, log_events, caches, lang, speculate,
                    extra_specs, extra_views,
                )

            dispatch = _with_reduction(
                raw, proc, caches, wpool.views, wpool.workers, policy, out
            )
            handler = _make_blocked_handler(
                mode, plans, report, interp, wpool.views, out, dispatch
            )
            _exec_hybrid(
                proc.body, dispatch, interp, env, wpool.views, out, deadline,
                blocked, handler,
                _make_residue_runner(caches, interp, wpool.views),
            )
            wpool.copy_back(arrays)
    else:
        ctx = mp_context(method)
        with SharedArrayPool(arrays) as spool:

            def raw(dproc, dloop, denv, speculate, extra_specs, extra_views):
                return _dispatch_spawn(
                    dproc, dloop, spool, denv, workers, policy, chunk,
                    claim_batch, deadline, log_events, ctx, caches, lang,
                    speculate, extra_specs, extra_views,
                )

            dispatch = _with_reduction(
                raw, proc, caches, spool.views, workers, policy, out
            )
            handler = _make_blocked_handler(
                mode, plans, report, interp, spool.views, out, dispatch
            )
            _exec_hybrid(
                proc.body, dispatch, interp, env, spool.views, out, deadline,
                blocked, handler,
                _make_residue_runner(caches, interp, spool.views),
            )
            spool.copy_back(arrays)
    out.wall_time = time.monotonic() - t_start
    if caches.tuner is not None:
        out.calibrations = (
            caches.tuner.calibrations + caches.tuner.quick_calibrations
        )
        out.pinned_decisions = caches.tuner.pinned_hits
    record_run(out)
    return out
