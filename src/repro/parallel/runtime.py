"""Process-parallel drivers for coalesced DOALL procedures.

:func:`run_parallel_doall` executes a procedure whose body is one flat DOALL
(the shape coalescing produces) across worker processes: arrays move into
shared memory once, workers claim chunks through the shared fetch&add
counter, and the parent copies results back on success.

:func:`run_parallel_procedure` generalizes to whole programs (the paper's
*hybrid* case, e.g. Gauss–Jordan): top-level DOALL loops are dispatched to
workers, everything between them runs serially in the parent over the same
shared-memory views, so one pool serves the whole execution.

Robustness contract:

* the outer loop is validated DOALL (and unit-step) *before* any process or
  segment is created — :class:`ParallelDispatchError` otherwise;
* a worker that raises (or dies) triggers termination of its peers and a
  :class:`WorkerCrashError` carrying the worker traceback;
* a per-run ``timeout`` kills the fleet and raises
  :class:`ParallelTimeoutError` (the ``backend="mp"`` adapter turns this
  into a graceful serial fallback);
* shared-memory segments are unlinked on **every** exit path — success,
  crash, or timeout — so ``/dev/shm`` never accumulates garbage.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.codegen.pygen import generate_chunk_source
from repro.ir.expr import Const
from repro.ir.stmt import Loop, Procedure
from repro.ir.validate import validate
from repro.parallel.counter import SharedClaimCounter, policy_plan
from repro.parallel.shm import SharedArrayPool
from repro.parallel.worker import worker_main
from repro.runtime.interp import Interpreter
from repro.scheduling.policies import SchedulingPolicy


class ParallelError(Exception):
    """Base class for process-parallel runtime failures."""


class ParallelDispatchError(ParallelError):
    """The procedure cannot be dispatched (e.g. outer loop is not DOALL)."""


class WorkerCrashError(ParallelError):
    """A worker process raised or died; peers were terminated cleanly."""


class ParallelTimeoutError(ParallelError):
    """The run exceeded its deadline; workers were killed."""


@dataclass(frozen=True)
class ClaimEvent:
    """One executed chunk: who claimed it, what range, when (run-relative)."""

    worker: int
    lo: int
    hi: int  # inclusive loop values
    t_claim: float  # claim issued (seconds from run start)
    t_work: float  # claim granted, body work begins
    t_end: float  # chunk finished

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1


@dataclass
class ParallelRunResult:
    """Measured outcome of one parallel DOALL dispatch."""

    loop_var: str
    lo: int
    hi: int
    workers: int
    policy: str
    wall_time: float
    iterations_per_worker: list[int]
    claims: int
    events: list[ClaimEvent] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        return sum(self.iterations_per_worker)

    def to_sim_result(self):
        """Measured schedule as a :class:`repro.machine.trace.SimResult`."""
        from repro.parallel.observe import to_sim_result

        return to_sim_result(self)

    def gantt(self, width: int = 50, time_scale: float = 1e6) -> str:
        """Text Gantt chart of the *measured* schedule (default: µs)."""
        from repro.machine.gantt import render_gantt
        from repro.parallel.observe import to_sim_result

        return render_gantt(to_sim_result(self, time_scale), width=width)


@dataclass
class ParallelProcedureResult:
    """Outcome of a whole-procedure run: one entry per dispatched DOALL."""

    wall_time: float
    dispatches: list[ParallelRunResult] = field(default_factory=list)
    serial_stmts: int = 0

    @property
    def claims(self) -> int:
        return sum(d.claims for d in self.dispatches)

    @property
    def total_iterations(self) -> int:
        return sum(d.total_iterations for d in self.dispatches)


def _context(method: str | None) -> multiprocessing.context.BaseContext:
    if method is not None:
        return multiprocessing.get_context(method)
    try:  # fork is fastest and fine for these self-contained workers
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _dispatchable(loop: Loop) -> bool:
    """A top-level loop we can hand to workers: DOALL with unit step."""
    return loop.is_doall and isinstance(loop.step, Const) and loop.step.value == 1


def _check_dispatchable(proc: Procedure) -> None:
    """Raise :class:`ParallelDispatchError` unless something can go parallel."""
    if not any(
        isinstance(s, Loop) and _dispatchable(s) for s in proc.body.stmts
    ):
        raise ParallelDispatchError(
            f"procedure {proc.name!r} has no top-level unit-step DOALL to "
            "dispatch (coalesce it first, or run the serial backend)"
        )


def _terminate(procs: list) -> None:
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        p.join(timeout=1.0)
    for p in procs:
        if p.is_alive():  # pragma: no cover - terminate() refused
            p.kill()
            p.join(timeout=1.0)


def _gather(procs: list, q, deadline: float | None) -> dict:
    """Collect one result message per worker, watching for crashes/timeouts."""
    results: dict[int, tuple] = {}
    pending = set(range(len(procs)))
    grace_until: float | None = None
    while pending:
        now = time.monotonic()
        if deadline is not None and now > deadline:
            raise ParallelTimeoutError(
                f"parallel run exceeded its deadline with {len(pending)} "
                "worker(s) still running"
            )
        try:
            msg = q.get(timeout=0.05)
        except queue_mod.Empty:
            dead = [w for w in pending if not procs[w].is_alive()]
            if len(dead) == len(pending):
                # Every remaining worker has exited without a message yet;
                # allow a short grace period for queue feeders to flush,
                # then declare them crashed.
                if grace_until is None:
                    grace_until = now + 1.0
                elif now > grace_until:
                    for w in dead:
                        results[w] = ("dead", w, procs[w].exitcode)
                    pending.clear()
            continue
        results[msg[1]] = msg
        pending.discard(msg[1])
    return results


def _dispatch_loop(
    proc: Procedure,
    loop: Loop,
    pool: SharedArrayPool,
    env: Mapping[str, int | float],
    workers: int,
    policy: SchedulingPolicy | str,
    chunk: int | None,
    deadline: float | None,
    log_events: bool,
    ctx: multiprocessing.context.BaseContext,
) -> ParallelRunResult:
    """Run one top-level DOALL across worker processes (pool already live)."""
    interp = Interpreter()
    env = dict(env)
    lo = interp._eval_int(loop.lower, env, pool.views, "loop lower bound")
    hi = interp._eval_int(loop.upper, env, pool.views, "loop upper bound")
    n = max(0, hi - lo + 1)
    if n == 0:
        name = policy if isinstance(policy, str) else policy.name
        return ParallelRunResult(
            loop.var, lo, hi, workers, name, 0.0, [0] * workers, 0
        )
    workers = max(1, min(workers, n))
    plan = policy_plan(policy, n, workers, chunk)

    extra = tuple(
        sorted(k for k in env if k not in proc.scalars and k != loop.var)
    )
    scalar_order = list(proc.scalars) + list(extra)
    source = (
        _chunk_source_with_extras(proc, loop, extra)
        if extra
        else generate_chunk_source(proc, loop=loop)
    )
    fname = f"{proc.name}__chunk"
    scalars = {name: env[name] for name in scalar_order}

    job = {
        "source": source,
        "fname": fname,
        "specs": pool.specs(),
        "array_order": list(proc.arrays),
        "scalar_order": scalar_order,
        "scalars": scalars,
        "plan": plan,
        "lo": lo,
        "log_events": log_events,
    }
    counter = (
        None if plan.static is not None else SharedClaimCounter(lo, hi, ctx)
    )
    q = ctx.Queue()
    procs = [
        ctx.Process(
            target=worker_main,
            args=(wid, job, counter, q),
            name=f"repro-par-{wid}",
            daemon=True,
        )
        for wid in range(workers)
    ]
    t_base = time.monotonic()
    for p in procs:
        p.start()
    try:
        results = _gather(procs, q, deadline)
    except BaseException:
        _terminate(procs)
        raise
    for p in procs:
        p.join(timeout=5.0)

    crashes = []
    for wid in range(workers):
        msg = results.get(wid)
        if msg is None or msg[0] == "dead":
            crashes.append(f"worker {wid}: died (exitcode {procs[wid].exitcode})")
        elif msg[0] == "err":
            crashes.append(f"worker {wid}:\n{msg[2]}")
    if crashes:
        _terminate(procs)
        raise WorkerCrashError(
            "parallel DOALL failed in {} worker(s):\n{}".format(
                len(crashes), "\n".join(crashes)
            )
        )

    wall = time.monotonic() - t_base
    per_worker = [0] * workers
    claims = 0
    events: list[ClaimEvent] = []
    for wid in range(workers):
        _, _, iters, wclaims, wevents = results[wid]
        per_worker[wid] = iters
        claims += wclaims
        for (clo, chi, t0, t1, t2) in wevents:
            events.append(
                ClaimEvent(wid, clo, chi, t0 - t_base, t1 - t_base, t2 - t_base)
            )
    if sum(per_worker) != n:
        raise ParallelError(
            f"claim accounting violated: {sum(per_worker)} iterations "
            f"executed for a range of {n}"
        )
    events.sort(key=lambda e: (e.worker, e.t_claim))
    return ParallelRunResult(
        loop.var, lo, hi, workers, plan.name, wall, per_worker, claims, events
    )


def _chunk_source_with_extras(
    proc: Procedure, loop: Loop, extra: tuple[str, ...]
) -> str:
    """Chunk source whose parameter list also carries env-local scalars."""
    widened = Procedure(
        proc.name, proc.body, proc.arrays, tuple(proc.scalars) + extra
    )
    return generate_chunk_source(widened, loop=loop)


def run_parallel_doall(
    proc: Procedure,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, int | float] | None = None,
    workers: int = 4,
    policy: SchedulingPolicy | str = "gss",
    chunk: int | None = None,
    timeout: float | None = None,
    log_events: bool = True,
    method: str | None = None,
) -> ParallelRunResult:
    """Execute a single-DOALL procedure across worker processes.

    The procedure body must be exactly one top-level unit-step DOALL (what
    :func:`repro.transforms.coalesce.coalesce_procedure` produces).  On
    success the caller's ``arrays`` hold the results; on any failure they
    are untouched (workers mutate only the shared copies).
    """
    validate(proc)
    body = proc.body
    if len(body) != 1 or not isinstance(body.stmts[0], Loop):
        raise ParallelDispatchError(
            "procedure body must be a single loop (use run_parallel_procedure "
            "for mixed serial/parallel programs)"
        )
    loop = body.stmts[0]
    if not _dispatchable(loop):
        raise ParallelDispatchError(
            f"outer loop {loop.var!r} is not a unit-step DOALL"
        )
    ctx = _context(method)
    env: dict[str, int | float] = dict(scalars or {})
    deadline = None if timeout is None else time.monotonic() + timeout
    with SharedArrayPool(arrays) as pool:
        result = _dispatch_loop(
            proc, loop, pool, env, workers, policy, chunk, deadline,
            log_events, ctx,
        )
        pool.copy_back(arrays)
    return result


def run_parallel_procedure(
    proc: Procedure,
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, int | float] | None = None,
    workers: int = 4,
    policy: SchedulingPolicy | str = "gss",
    chunk: int | None = None,
    timeout: float | None = None,
    log_events: bool = True,
    method: str | None = None,
) -> ParallelProcedureResult:
    """Execute a whole procedure, dispatching its top-level DOALL loops.

    Statements between top-level DOALLs (the serial pivot loop of a hybrid
    program, scalar setup, non-unit-step loops) run in the parent over the
    same shared-memory views, so array state flows through the whole
    program without extra copies.  Raises :class:`ParallelDispatchError` if
    there is nothing to dispatch — a purely serial program should use the
    serial backends instead of paying for a pool.
    """
    validate(proc)
    _check_dispatchable(proc)
    ctx = _context(method)
    env: dict[str, int | float] = dict(scalars or {})
    deadline = None if timeout is None else time.monotonic() + timeout
    t_start = time.monotonic()
    out = ParallelProcedureResult(0.0)
    interp = Interpreter()
    with SharedArrayPool(arrays) as pool:
        for stmt in proc.body.stmts:
            if isinstance(stmt, Loop) and _dispatchable(stmt):
                out.dispatches.append(
                    _dispatch_loop(
                        proc, stmt, pool, env, workers, policy, chunk,
                        deadline, log_events, ctx,
                    )
                )
            else:
                if deadline is not None and time.monotonic() > deadline:
                    raise ParallelTimeoutError(
                        "parallel run exceeded its deadline in a serial segment"
                    )
                interp._exec(stmt, env, pool.views)
                out.serial_stmts += 1
        pool.copy_back(arrays)
    out.wall_time = time.monotonic() - t_start
    return out
