"""Exception hierarchy of the process-parallel runtime.

Lives in its own module so both layers of the runtime — the dispatch
drivers (:mod:`repro.parallel.runtime`) and the persistent worker pool
(:mod:`repro.parallel.pool`) — can raise the same types without importing
each other.  The public import path is unchanged: every class is
re-exported from :mod:`repro.parallel` and :mod:`repro.parallel.runtime`.
"""

from __future__ import annotations


class ParallelError(Exception):
    """Base class for process-parallel runtime failures."""


class ParallelDispatchError(ParallelError):
    """The procedure cannot be dispatched (e.g. outer loop is not DOALL)."""


class WorkerCrashError(ParallelError):
    """A worker process raised or died; peers were terminated cleanly."""


class ParallelTimeoutError(ParallelError):
    """The run exceeded its deadline; workers were killed."""
