"""Exception hierarchy of the process-parallel runtime.

Lives in its own module so both layers of the runtime — the dispatch
drivers (:mod:`repro.parallel.runtime`) and the persistent worker pool
(:mod:`repro.parallel.pool`) — can raise the same types without importing
each other.  The public import path is unchanged: every class is
re-exported from :mod:`repro.parallel` and :mod:`repro.parallel.runtime`.
"""

from __future__ import annotations


class ParallelError(Exception):
    """Base class for process-parallel runtime failures."""


class ParallelDispatchError(ParallelError):
    """The procedure cannot be dispatched (e.g. outer loop is not DOALL)."""


class SafetyVerificationError(ParallelDispatchError):
    """``safety=enforce`` refused the dispatch: a loop is not proven race-free.

    Raised *before* any worker process is created, so the caller (e.g. the
    mp backend's serial-fallback path) can rerun the procedure serially and
    record the refusal reason.
    """


class WorkerCrashError(ParallelError):
    """A worker process raised or died; peers were terminated cleanly."""


class ParallelTimeoutError(ParallelError):
    """The run exceeded its deadline; workers were killed."""
