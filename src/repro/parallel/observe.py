"""Measured schedules in the simulator's vocabulary.

The simulator (:mod:`repro.machine`) produces :class:`SimResult` objects;
the real runtime produces :class:`~repro.parallel.runtime.ParallelRunResult`
claim logs.  This module converts the latter into the former so one set of
renderers and metrics (``render_gantt``, ``speedup``, ``imbalance``) serves
both — measured schedules can be eyeballed and plotted directly against
simulator predictions, which is how the true-parallel benchmark closes the
loop on the paper's claims.

Times are seconds (optionally rescaled); chunk first-iterations are
converted to the simulator's 0-based flat convention.
"""

from __future__ import annotations

from repro.machine.trace import ChunkEvent, ProcessorTrace, SimResult


def to_sim_result(run, time_scale: float = 1.0) -> SimResult:
    """Convert a measured parallel run into a :class:`SimResult`.

    Claim latency (issue → grant) counts as overhead, body execution as
    busy time — the same split the simulator draws between dispatch cost
    and body cost.  Batched claims stay honest under this accounting: only
    the first chunk of a batch carries the counter round-trip, the rest
    are logged with zero claim latency, so the overhead column reflects
    actual lock traffic (``run.lock_ops``), not chunk count.
    ``time_scale`` multiplies every timestamp (e.g. pass ``1e6`` to read
    the Gantt in microseconds).
    """
    traces = [ProcessorTrace() for _ in range(run.workers)]
    events: list[ChunkEvent] = []
    for e in run.events:
        t = traces[e.worker]
        start = e.t_claim * time_scale
        work_start = e.t_work * time_scale
        end = e.t_end * time_scale
        t.overhead += work_start - start
        t.busy += end - work_start
        t.dispatches += 1
        t.iterations += e.size
        t.finish = max(t.finish, end)
        events.append(
            ChunkEvent(e.worker, start, work_start, end, e.lo - run.lo, e.size)
        )
    if run.events:
        finish = max(t.finish for t in traces)
    else:  # event logging disabled: fall back to aggregate accounting
        finish = run.wall_time * time_scale
        for wid, iters in enumerate(run.iterations_per_worker):
            traces[wid].iterations = iters
            traces[wid].finish = finish
    return SimResult(
        finish_time=finish,
        processors=traces,
        barriers=1,
        total_dispatches=run.claims,
        events=sorted(events, key=lambda e: (e.start, e.processor)),
    )
