"""Measured schedules in the simulator's vocabulary — and live counters.

The simulator (:mod:`repro.machine`) produces :class:`SimResult` objects;
the real runtime produces :class:`~repro.parallel.runtime.ParallelRunResult`
claim logs.  This module converts the latter into the former so one set of
renderers and metrics (``render_gantt``, ``speedup``, ``imbalance``) serves
both — measured schedules can be eyeballed and plotted directly against
simulator predictions, which is how the true-parallel benchmark closes the
loop on the paper's claims.

Times are seconds (optionally rescaled); chunk first-iterations are
converted to the simulator's 0-based flat convention.

This module also owns the *observability schema*: every parallel run
records into the process-wide :data:`DISPATCH` counters, and
:func:`metrics_snapshot` folds those together with the artifact cache's
counters (and, when serving, the server's request counters) into one JSON
document.  The server's ``GET /metrics`` endpoint returns exactly this
structure, so in-process runs and served runs are observed through one
schema.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.machine.trace import ChunkEvent, ProcessorTrace, SimResult

#: Version tag of the metrics document layout.
METRICS_SCHEMA = "repro.metrics/v1"


@dataclass
class DispatchCounters:
    """Monotonic process-wide counters over every parallel run."""

    runs: int = 0
    dispatches: int = 0
    claims: int = 0
    lock_ops: int = 0
    iterations: int = 0
    wall_s: float = 0.0
    fallbacks: int = 0
    #: Per-chunk-language dispatch counts: "c" (native kernel), "numpy"
    #: (whole-slice vectorized chunk), "py" (interpreted chunk), "mixed"
    #: (workers of one dispatch disagreed — some dlopened the kernel,
    #: some degraded).
    chunk_c: int = 0
    chunk_numpy: int = 0
    chunk_py: int = 0
    chunk_mixed: int = 0
    #: Dispatches that *wanted* the C chunk language but degraded to
    #: Python (no compiler, codegen failure, compile failure, or a
    #: worker-side dlopen failure).
    chunk_fallbacks: int = 0
    #: Chunk-safety verifier activity: procedures checked, per-loop
    #: verdicts, dispatches refused under ``safety="enforce"`` (executed
    #: serially instead), and finding counts keyed by stable rule code.
    safety_checked: int = 0
    safety_proven: int = 0
    safety_unproven: int = 0
    safety_blocked: int = 0
    safety_findings: dict[str, int] | None = None
    #: ``safety="speculate"`` activity: dispatches routed through the
    #: runtime inspector, dispatches the inspector proved disjoint (then
    #: executed normally), dispatches executed speculatively against
    #: shadow arrays, and how those speculations resolved (committed vs
    #: rolled back to serial).
    spec_inspected: int = 0
    spec_proven_dynamic: int = 0
    spec_speculated: int = 0
    spec_committed: int = 0
    spec_rolled_back: int = 0
    #: Transform activity: pipeline fission outcomes (loops split /
    #: refused with every statement in one dependence cycle), reductions
    #: recognized by the verifier or the transform pass, and dispatches
    #: executed through the runtime's partial-accumulator reduction
    #: engine.
    fission_applied: int = 0
    fission_refused: int = 0
    reductions_recognized: int = 0
    reduction_dispatches: int = 0
    #: Variant-farm activity (:mod:`repro.tuning`): dispatches won per
    #: variant name, full calibrations run (variant sweep + claim-batch
    #: sweep), quick calibrations (claim-batch only, the
    #: ``claim_batch="auto"`` path), and decisions served from a pinned
    #: cache-manifest entry with zero re-measurement.
    variant_wins: dict[str, int] | None = None
    calibrations: int = 0
    quick_calibrations: int = 0
    pinned_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "runs": self.runs,
            "dispatches": self.dispatches,
            "claims": self.claims,
            "lock_ops": self.lock_ops,
            "iterations": self.iterations,
            "wall_s": round(self.wall_s, 6),
            "fallbacks": self.fallbacks,
            "chunk_lang": {
                "c": self.chunk_c,
                "numpy": self.chunk_numpy,
                "py": self.chunk_py,
                "mixed": self.chunk_mixed,
                "fallbacks": self.chunk_fallbacks,
            },
            "variants": {
                "wins": dict(self.variant_wins or {}),
                "calibrations": self.calibrations,
                "quick_calibrations": self.quick_calibrations,
                "pinned_hits": self.pinned_hits,
            },
            "safety": {
                "checked": self.safety_checked,
                "proven": self.safety_proven,
                "unproven": self.safety_unproven,
                "blocked": self.safety_blocked,
                "findings": dict(self.safety_findings or {}),
            },
            "speculate": {
                "inspected": self.spec_inspected,
                "proven_dynamic": self.spec_proven_dynamic,
                "speculated": self.spec_speculated,
                "committed": self.spec_committed,
                "rolled_back": self.spec_rolled_back,
            },
            "transforms": {
                "fission_applied": self.fission_applied,
                "fission_refused": self.fission_refused,
                "reductions_recognized": self.reductions_recognized,
                "reduction_dispatches": self.reduction_dispatches,
            },
        }


@dataclass
class JobCounters:
    """Monotonic job-lifecycle counters (the ``jobs`` metrics block).

    Owned by a :class:`repro.cluster.jobs.JobQueue` (each queue carries its
    own instance, so two clusters in one process do not cross-count); the
    router folds them into ``GET /metrics`` under ``"jobs"``.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    rejected: int = 0
    cancelled: int = 0
    expired: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "expired": self.expired,
        }


@dataclass
class TransportCounters:
    """Per-transport request counts (the ``transport`` metrics block).

    Counted wherever a ``/run`` body is accepted: the lone server counts
    under ``server.transport``, the cluster front door under
    ``cluster.transport`` — the router's counts are how the pass-through
    claim is asserted (wire runs increment ``wire`` without the router
    ever materializing an ndarray).  Callers guard with their own lock.
    """

    json: int = 0
    wire: int = 0
    shm: int = 0

    def bump(self, transport: str) -> None:
        if transport not in ("json", "wire", "shm"):
            raise ValueError(f"unknown transport {transport!r}")
        setattr(self, transport, getattr(self, transport) + 1)

    def as_dict(self) -> dict:
        return {"json": self.json, "wire": self.wire, "shm": self.shm}


#: The counters :func:`record_run` / :func:`record_fallback` feed.
DISPATCH = DispatchCounters()
_DISPATCH_LOCK = threading.Lock()


def record_run(result) -> None:
    """Fold one parallel run into :data:`DISPATCH`.

    Accepts a whole-procedure result (counted as ``len(dispatches)``
    dispatches) or a single-DOALL :class:`ParallelRunResult` (one).
    """
    dispatches = (
        result.dispatches if hasattr(result, "dispatches") else [result]
    )
    with _DISPATCH_LOCK:
        DISPATCH.runs += 1
        DISPATCH.dispatches += len(dispatches)
        DISPATCH.claims += result.claims
        DISPATCH.lock_ops += result.lock_ops
        DISPATCH.iterations += result.total_iterations
        DISPATCH.wall_s += result.wall_time
        for d in dispatches:
            lang = getattr(d, "chunk_lang", "py")
            if lang == "c":
                DISPATCH.chunk_c += 1
            elif lang == "numpy":
                DISPATCH.chunk_numpy += 1
            elif lang == "mixed":
                DISPATCH.chunk_mixed += 1
            else:
                DISPATCH.chunk_py += 1
            variant = getattr(d, "variant", None)
            if variant:
                if DISPATCH.variant_wins is None:
                    DISPATCH.variant_wins = {}
                DISPATCH.variant_wins[variant] = (
                    DISPATCH.variant_wins.get(variant, 0) + 1
                )


def record_fallback() -> None:
    """Count one graceful serial fallback (``backend="mp"`` degradation)."""
    with _DISPATCH_LOCK:
        DISPATCH.fallbacks += 1


def record_chunk_fallback(count: int = 1) -> None:
    """Count dispatches that wanted C chunks but degraded to Python."""
    with _DISPATCH_LOCK:
        DISPATCH.chunk_fallbacks += count


def record_safety(report) -> None:
    """Fold one :class:`~repro.analysis.safety.SafetyReport` into counters."""
    with _DISPATCH_LOCK:
        DISPATCH.safety_checked += 1
        for verdict in report.loops:
            if verdict.proven:
                DISPATCH.safety_proven += 1
            else:
                DISPATCH.safety_unproven += 1
        if report.findings:
            if DISPATCH.safety_findings is None:
                DISPATCH.safety_findings = {}
            for f in report.findings:
                DISPATCH.safety_findings[f.rule] = (
                    DISPATCH.safety_findings.get(f.rule, 0) + 1
                )


def record_safety_block(count: int = 1) -> None:
    """Count dispatches refused under ``safety="enforce"`` (ran serially)."""
    with _DISPATCH_LOCK:
        DISPATCH.safety_blocked += count


def record_calibration(full: bool = True) -> None:
    """Count one micro-calibration (``full``: variant sweep included)."""
    with _DISPATCH_LOCK:
        if full:
            DISPATCH.calibrations += 1
        else:
            DISPATCH.quick_calibrations += 1


def record_pinned_hit(count: int = 1) -> None:
    """Count decisions served from a pinned cache manifest (no measuring)."""
    with _DISPATCH_LOCK:
        DISPATCH.pinned_hits += count


def record_reduction_dispatch(count: int = 1) -> None:
    """Count dispatches run through the partial-accumulator engine."""
    with _DISPATCH_LOCK:
        DISPATCH.reduction_dispatches += count


def record_transforms(
    fission_applied: int = 0,
    fission_refused: int = 0,
    reductions: int = 0,
) -> None:
    """Fold one pipeline's transform outcomes into :data:`DISPATCH`."""
    with _DISPATCH_LOCK:
        DISPATCH.fission_applied += fission_applied
        DISPATCH.fission_refused += fission_refused
        DISPATCH.reductions_recognized += reductions


def record_speculate(
    inspected: int = 0,
    proven_dynamic: int = 0,
    speculated: int = 0,
    committed: int = 0,
    rolled_back: int = 0,
) -> None:
    """Fold one ``safety="speculate"`` event into :data:`DISPATCH`."""
    with _DISPATCH_LOCK:
        DISPATCH.spec_inspected += inspected
        DISPATCH.spec_proven_dynamic += proven_dynamic
        DISPATCH.spec_speculated += speculated
        DISPATCH.spec_committed += committed
        DISPATCH.spec_rolled_back += rolled_back


def metrics_snapshot(
    cache: object = "default",
    server: dict | None = None,
    jobs: dict | None = None,
    cluster: dict | None = None,
) -> dict:
    """The unified metrics document (what ``GET /metrics`` serves).

    ``cache`` is resolved like every other cache argument (``"default"``,
    an :class:`repro.cache.ArtifactCache`, a path, or None); ``server``
    is the server's own request-counter block, absent for in-process use.
    A cluster front door additionally passes ``jobs`` (the queue's
    :class:`JobCounters` plus live state gauges) and ``cluster`` (replica
    fleet health: alive/restarts, per-replica in-flight gauges, tenants),
    so one schema observes a lone server and an N-replica deployment.
    """
    from repro.cache import resolve_cache

    store = resolve_cache(cache)
    doc = {
        "schema": METRICS_SCHEMA,
        "dispatch": DISPATCH.as_dict(),
        "cache": store.stats_dict() if store is not None else None,
    }
    if server is not None:
        doc["server"] = server
    if jobs is not None:
        doc["jobs"] = jobs
    if cluster is not None:
        doc["cluster"] = cluster
    return doc


def to_sim_result(run, time_scale: float = 1.0) -> SimResult:
    """Convert a measured parallel run into a :class:`SimResult`.

    Claim latency (issue → grant) counts as overhead, body execution as
    busy time — the same split the simulator draws between dispatch cost
    and body cost.  Batched claims stay honest under this accounting: only
    the first chunk of a batch carries the counter round-trip, the rest
    are logged with zero claim latency, so the overhead column reflects
    actual lock traffic (``run.lock_ops``), not chunk count.
    ``time_scale`` multiplies every timestamp (e.g. pass ``1e6`` to read
    the Gantt in microseconds).
    """
    traces = [ProcessorTrace() for _ in range(run.workers)]
    events: list[ChunkEvent] = []
    for e in run.events:
        t = traces[e.worker]
        start = e.t_claim * time_scale
        work_start = e.t_work * time_scale
        end = e.t_end * time_scale
        t.overhead += work_start - start
        t.busy += end - work_start
        t.dispatches += 1
        t.iterations += e.size
        t.finish = max(t.finish, end)
        events.append(
            ChunkEvent(e.worker, start, work_start, end, e.lo - run.lo, e.size)
        )
    if run.events:
        finish = max(t.finish for t in traces)
    else:  # event logging disabled: fall back to aggregate accounting
        finish = run.wall_time * time_scale
        for wid, iters in enumerate(run.iterations_per_worker):
            traces[wid].iterations = iters
            traces[wid].finish = finish
    return SimResult(
        finish_time=finish,
        processors=traces,
        barriers=1,
        total_dispatches=run.claims,
        events=sorted(events, key=lambda e: (e.start, e.processor)),
    )
