"""The persistent worker pool: spawn once, dispatch many times.

The PR-1 runtime paid one fleet of ``fork``/``spawn`` calls, one fresh
queue, and one chunk-source compile *per dispatched DOALL* — so a hybrid
program like Gauss–Jordan (one dispatch per pivot row) was dominated by
process-creation cost, exactly the per-dispatch scheduling overhead the
paper's coalescing transformation exists to amortize.  A
:class:`WorkerPool` moves all of that to setup time:

* worker processes are spawned **once**, with the shared-memory array
  views and the (resettable) shared claim counter already attached;
* each dispatch is then one lightweight job descriptor per worker over a
  private queue, plus the implicit barrier of gathering one result
  message per worker — no fork, no re-attach, no new segments;
* chunk functions are cached by source text on both sides
  (:func:`repro.codegen.pygen.compile_chunk_source` is memoized), so a
  loop shape dispatched N times is generated and compiled once.

The robustness contract matches the spawn-per-dispatch path: a worker
that raises or dies marks the pool *broken*, terminates the fleet, and
raises :class:`WorkerCrashError`; a deadline overrun kills the fleet and
raises :class:`ParallelTimeoutError`; and the shared-memory segments the
pool owns are unlinked on ``close()``/``__exit__`` no matter how the run
ended.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from typing import Callable, Mapping

import numpy as np

from repro.parallel.counter import SharedClaimCounter
from repro.parallel.errors import (
    ParallelError,
    ParallelTimeoutError,
    WorkerCrashError,
)
from repro.parallel.shm import SharedArrayPool
from repro.parallel.worker import pool_worker_main

#: Seconds allowed for result-queue feeders to flush after every pending
#: worker has exited, before the survivors are declared crashed.
GATHER_GRACE = 1.0


def mp_context(method: str | None = None) -> multiprocessing.context.BaseContext:
    """The multiprocessing context the runtime uses (fork where possible)."""
    if method is not None:
        return multiprocessing.get_context(method)
    try:  # fork is fastest and fine for these self-contained workers
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def terminate_procs(procs: list) -> None:
    """Terminate (then kill) every still-alive process, reaping them all."""
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        p.join(timeout=1.0)
    for p in procs:
        if p.is_alive():  # pragma: no cover - terminate() refused
            p.kill()
            p.join(timeout=1.0)


def gather_results(
    procs: list,
    q,
    deadline: float | None,
    want: set[int],
    key: Callable = lambda msg: msg[1],
) -> dict:
    """Collect one result message per worker id in ``want``.

    ``key`` maps a queue message to the worker id it accounts for (return
    None to discard stale traffic).  Watches for crashes: once every
    still-pending worker has exited, a short grace period lets the queue
    feeders flush, the queue is drained one final time — a worker that
    exited cleanly right after posting its result is counted from the
    message log, never misclassified by its exit code — and only then are
    the messageless workers marked ``("dead", wid, exitcode)``.
    """
    results: dict[int, tuple] = {}
    pending = set(want)
    grace_until: float | None = None

    def take(msg) -> None:
        wid = key(msg)
        if wid in pending:
            results[wid] = msg
            pending.discard(wid)

    while pending:
        now = time.monotonic()
        if deadline is not None and now > deadline:
            raise ParallelTimeoutError(
                f"parallel run exceeded its deadline with {len(pending)} "
                "worker(s) still running"
            )
        try:
            msg = q.get(timeout=0.05)
        except queue_mod.Empty:
            if all(not procs[w].is_alive() for w in pending):
                if grace_until is None:
                    grace_until = now + GATHER_GRACE
                elif now > grace_until:
                    # Message log first: drain anything the feeders
                    # flushed between our last get() and now.
                    while pending:
                        try:
                            take(q.get_nowait())
                        except queue_mod.Empty:
                            break
                    for w in pending:
                        results[w] = ("dead", w, procs[w].exitcode)
                    pending.clear()
            continue
        take(msg)
    return results


def raise_worker_crashes(results: Mapping[int, tuple], procs: list) -> None:
    """Raise :class:`WorkerCrashError` if any worker errored or died.

    ``results`` holds one normalized message per worker: ``("ok", wid,
    ...)``, ``("err", wid, traceback)``, or ``("dead", wid, exitcode)``.
    """
    crashes = []
    for wid in range(len(procs)):
        msg = results.get(wid)
        if msg is None or msg[0] == "dead":
            code = msg[2] if msg is not None else procs[wid].exitcode
            crashes.append(f"worker {wid}: died (exitcode {code})")
        elif msg[0] == "err":
            crashes.append(f"worker {wid}:\n{msg[2]}")
    if crashes:
        raise WorkerCrashError(
            "parallel DOALL failed in {} worker(s):\n{}".format(
                len(crashes), "\n".join(crashes)
            )
        )


class WorkerPool:
    """A resident fleet of worker processes over one shared array pool.

    Usage::

        with WorkerPool(arrays, workers=4) as pool:
            t_base, results = pool.dispatch(job, lo, hi, deadline)
            ...more dispatches, same processes...
            pool.copy_back(arrays)      # only on success
        # workers stopped, segments unlinked here — success or not

    ``dispatch`` is a barrier: it returns only once every worker has
    reported on the current job, so the shared counter can be safely
    reset for the next loop range and the parent may run serial program
    segments over ``views`` between dispatches.
    """

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        workers: int = 4,
        method: str | None = None,
        ctx: multiprocessing.context.BaseContext | None = None,
        name: str = "repro-pool",
    ) -> None:
        self.ctx = ctx or mp_context(method)
        self.workers = max(1, workers)
        self._closed = False
        self._broken = False
        self._seq = 0
        self.shared = SharedArrayPool(arrays)
        try:
            # Created drained; dispatch() re-arms it per loop range.
            # (Synchronized objects only cross the process boundary at
            # spawn time, which is why one resettable counter serves
            # every dispatch.)
            self.counter = SharedClaimCounter(0, -1, self.ctx)
            self._jobs = [self.ctx.SimpleQueue() for _ in range(self.workers)]
            self._results = self.ctx.Queue()
            specs = self.shared.specs()
            self._procs = [
                self.ctx.Process(
                    target=pool_worker_main,
                    args=(wid, specs, self.counter, self._jobs[wid], self._results),
                    name=f"{name}-{wid}",
                    daemon=True,
                )
                for wid in range(self.workers)
            ]
            for p in self._procs:
                p.start()
        except BaseException:
            self.shared.close()
            raise

    # -- array plumbing (delegated to the owned SharedArrayPool) ----------
    @property
    def views(self) -> dict[str, np.ndarray]:
        """Parent-side shm-backed ndarrays (shared with every worker)."""
        return self.shared.views

    def copy_back(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Copy shared results back into the caller's arrays."""
        self.shared.copy_back(arrays)

    def load(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Load a new request's arrays into the shared views (warm reuse)."""
        self.shared.load(arrays)

    # -- dispatch ---------------------------------------------------------
    def dispatch(
        self,
        job: dict,
        lo: int,
        hi: int,
        deadline: float | None = None,
    ) -> tuple[float, dict[int, tuple]]:
        """Run one DOALL dispatch on the resident fleet.

        Re-arms the shared counter for ``[lo, hi]`` (dynamic plans only),
        sends ``job`` to every worker, and gathers one result message per
        worker.  Returns ``(t_base, results)`` where ``t_base`` is the
        dispatch start on the shared monotonic clock and ``results`` maps
        worker id to ``("ok", wid, iterations, claims, lock_ops, events,
        chunk_lang)``.  A crash or timeout terminates the fleet, marks
        the pool broken, and raises.
        """
        if self._closed:
            raise ParallelError("worker pool is closed")
        if self._broken:
            raise ParallelError(
                "worker pool is broken (a previous dispatch crashed or "
                "timed out)"
            )
        if job["plan"].rule is not None:
            self.counter.reset(lo, hi)
        self._seq += 1
        seq = self._seq

        def key(msg):
            # ok/err messages carry (kind, wid, seq, ...); ignore ok
            # traffic from any earlier dispatch (cannot normally occur —
            # dispatch is a barrier — but a stale message must never
            # corrupt accounting).  err messages always count: a worker
            # that failed before taking its first job reports seq None.
            if msg[0] == "err":
                return msg[1]
            return msg[1] if msg[2] == seq else None

        t_base = time.monotonic()
        try:
            for q in self._jobs:
                q.put(("job", seq, job))
            raw = gather_results(
                self._procs,
                self._results,
                deadline,
                set(range(self.workers)),
                key=key,
            )
            # Strip the seq field so both runtime paths see one message
            # shape: ("ok", wid, ...) / ("err", wid, tb) / ("dead", wid, code).
            results = {
                wid: (msg[:2] + msg[3:]) if msg[0] in ("ok", "err") else msg
                for wid, msg in raw.items()
            }
            raise_worker_crashes(results, self._procs)
        except BaseException:
            self._broken = True
            terminate_procs(self._procs)
            raise
        return t_base, results

    # -- lifecycle --------------------------------------------------------
    @property
    def broken(self) -> bool:
        return self._broken

    def close(self) -> None:
        """Stop the workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._broken:
            for q in self._jobs:
                try:
                    q.put(("stop",))
                except Exception:  # pragma: no cover - worker already gone
                    pass
            for p in self._procs:
                p.join(timeout=2.0)
        terminate_procs(self._procs)
        # Unblock and reap the result queue's feeder thread before the
        # segments go away.
        try:
            self._results.close()
            self._results.join_thread()
        except Exception:  # pragma: no cover - defensive
            pass
        self.shared.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort safety net
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
