"""Shared-memory numpy arrays for the process-parallel runtime.

A :class:`SharedArrayPool` mirrors a caller's array environment into
``multiprocessing.shared_memory`` segments: the parent copies data in once,
every worker attaches zero-copy views by segment name, and the parent copies
results back out on success.  Segment lifetime is the pool's one job — the
pool unlinks everything it created in ``close()``/``__exit__`` no matter how
the run ended, so the test suite can assert ``/dev/shm`` is clean even after
crash-injection runs.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable, Mapping

import numpy as np

#: Prefix of every segment this package creates (tests sweep /dev/shm for it).
SEGMENT_PREFIX = "repro-par"


@dataclass(frozen=True)
class ArraySpec:
    """Picklable description of one shared array (what workers attach by)."""

    name: str  # IR array name
    segment: str  # shared-memory segment name
    shape: tuple[int, ...]
    dtype: str


def attach_array(spec: ArraySpec) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach a zero-copy view of an existing segment (worker side).

    On Python ≥ 3.13 the attachment is untracked (``track=False``): the
    parent pool owns the unlink.  On older versions the attach registers
    with the resource tracker, which is harmless here — workers inherit the
    parent's tracker and its cache is a set, so the parent's create +
    unlink keep the accounting balanced (no double-unlink, no "leaked
    shared_memory" warnings).
    """
    try:
        shm = shared_memory.SharedMemory(name=spec.segment, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        shm = shared_memory.SharedMemory(name=spec.segment)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return view, shm


class SharedArrayPool:
    """Owns one shared-memory segment per numpy array.

    Usage::

        with SharedArrayPool(arrays) as pool:
            views = pool.views          # parent-side shm-backed ndarrays
            specs = pool.specs()        # picklable, for worker attach
            ...run workers...
            pool.copy_back(arrays)      # only on success
        # segments closed and unlinked here, success or not
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        token = secrets.token_hex(4)
        self._segments: list[shared_memory.SharedMemory] = []
        self.views: dict[str, np.ndarray] = {}
        self._specs: dict[str, ArraySpec] = {}
        self._closed = False
        try:
            for idx, (name, arr) in enumerate(arrays.items()):
                arr = np.ascontiguousarray(arr)
                segment = f"{SEGMENT_PREFIX}-{os.getpid()}-{token}-{idx}"
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes), name=segment
                )
                self._segments.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                self.views[name] = view
                self._specs[name] = ArraySpec(
                    name, segment, arr.shape, arr.dtype.str
                )
        except BaseException:
            self.close()
            raise

    def specs(self) -> list[ArraySpec]:
        """Attachment recipes in declaration order (picklable)."""
        return list(self._specs.values())

    def copy_back(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Copy shared results back into the caller's arrays."""
        for name, view in self.views.items():
            np.copyto(arrays[name], view)

    def load(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Copy caller arrays *into* the shared views (copy_back's inverse).

        This is how a warm pool serves a new request's data: same names,
        same shapes, fresh contents.  Raises ``ValueError`` on an array
        environment that does not match the pool's.
        """
        missing = set(self.views) - set(arrays)
        extra = set(arrays) - set(self.views)
        if missing or extra:
            raise ValueError(
                f"array environment mismatch: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        for name, view in self.views.items():
            src = arrays[name]
            if tuple(src.shape) != tuple(view.shape):
                raise ValueError(
                    f"array {name!r}: shape {src.shape} does not match the "
                    f"pool's {view.shape}"
                )
            np.copyto(view, src)

    def close(self) -> None:
        """Release views, close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.views.clear()  # drop buffer references before closing
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - defensive
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort safety net
        self.close()


def leaked_segments(names: Iterable[str] | None = None) -> list[str]:
    """Segments with our prefix currently present in ``/dev/shm``.

    Test hook: should be empty before and after every run.  On platforms
    without ``/dev/shm`` this returns [] (the POSIX name sweep is the only
    portable leak check we can do without root).
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    found = [n for n in os.listdir(root) if n.startswith(SEGMENT_PREFIX)]
    if names is not None:
        wanted = set(names)
        found = [n for n in found if n in wanted]
    return sorted(found)
