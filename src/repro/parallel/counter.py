"""The shared fetch&add claim counter and the scheduling-policy bridge.

On the paper's machines every worker processor performs an atomic fetch&add
on one shared iteration index to claim work.  Here the counter is a
``multiprocessing.Value`` whose built-in lock guards the read-modify-write —
a faithful (if slower) fetch&add visible to every worker process.

Chunk sizes come from :mod:`repro.scheduling.policies`: the same policy
objects that drive the simulator drive the real runtime.  Dynamic policies
(self-scheduling, chunked, GSS) are compiled to a picklable *chunk rule*
evaluated inside the counter's critical section (GSS must read ``remaining``
atomically with the add, exactly as in Polychronopoulos & Kuck's scheme);
static policies are compiled to per-worker chunk lists so no shared counter
is needed at all.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from repro.scheduling.policies import (
    ChunkSelfScheduled,
    GuidedSelfScheduled,
    SchedulingPolicy,
    SelfScheduled,
    policy_by_name,
)

#: Picklable chunk rule: ("unit",) | ("fixed", k) | ("gss", p).
ChunkRule = tuple

#: Friendly aliases accepted anywhere a policy name is (api, cli, bench).
POLICY_ALIASES = {
    "unit": "self-sched",
    "fixed": "chunk-self-sched",
    "static": "static-block",
}


def resolve_policy(
    policy: SchedulingPolicy | str, chunk: int | None = None
) -> SchedulingPolicy:
    """Accept a policy object or a name (with aliases) and return the object."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    name = POLICY_ALIASES.get(policy, policy)
    kwargs = {}
    if name == "chunk-self-sched" and chunk is not None:
        kwargs["chunk"] = chunk
    return policy_by_name(name, **kwargs)


@dataclass(frozen=True)
class PolicyPlan:
    """How one parallel loop will be scheduled across ``workers`` processes.

    Exactly one of ``rule`` (dynamic: evaluated against the shared counter)
    and ``static`` (per-worker lists of flat 0-based ``(start, size)``
    chunks) is set.
    """

    name: str
    workers: int
    rule: ChunkRule | None = None
    static: tuple[tuple[tuple[int, int], ...], ...] | None = None


def policy_plan(
    policy: SchedulingPolicy | str,
    n: int,
    workers: int,
    chunk: int | None = None,
) -> PolicyPlan:
    """Compile a scheduling policy into a picklable execution plan."""
    policy = resolve_policy(policy, chunk)
    if policy.is_static:
        assignment = policy.static_assignment(n, workers)
        return PolicyPlan(
            policy.name,
            workers,
            static=tuple(tuple(chunks) for chunks in assignment),
        )
    if isinstance(policy, SelfScheduled):
        rule: ChunkRule = ("unit",)
    elif isinstance(policy, ChunkSelfScheduled):
        rule = ("fixed", policy.chunk)
    elif isinstance(policy, GuidedSelfScheduled):
        rule = ("gss", workers)
    else:
        raise ValueError(
            f"policy {policy.name!r} has no process-parallel chunk rule"
        )
    return PolicyPlan(policy.name, workers, rule=rule)


def chunk_size(rule: ChunkRule, remaining: int) -> int:
    """Evaluate a chunk rule; called under the counter lock."""
    kind = rule[0]
    if kind == "unit":
        return 1
    if kind == "fixed":
        return rule[1]
    if kind == "gss":
        return max(1, -(-remaining // rule[1]))
    raise ValueError(f"unknown chunk rule {rule!r}")


class SharedClaimCounter:
    """Shared iteration counter over the inclusive loop range [start, stop].

    ``claim(rule)`` atomically computes the chunk size from the rule and the
    live remaining count, advances the index (the fetch&add), and returns
    the claimed inclusive ``(lo, hi)`` — or None once the range is drained.
    Picklable into worker processes via the normal ``multiprocessing``
    inheritance machinery (fork and spawn both work).
    """

    def __init__(
        self, start: int, stop: int, ctx: multiprocessing.context.BaseContext
    ) -> None:
        self.start = start
        self.stop = stop
        self._next = ctx.Value("q", start)  # holds its own lock

    def claim(self, rule: ChunkRule) -> tuple[int, int] | None:
        with self._next.get_lock():
            lo = self._next.value
            if lo > self.stop:
                return None
            size = chunk_size(rule, self.stop - lo + 1)
            hi = min(lo + size - 1, self.stop)
            self._next.value = hi + 1
            return lo, hi

    @property
    def drained(self) -> bool:
        with self._next.get_lock():
            return self._next.value > self.stop
