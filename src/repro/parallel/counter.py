"""The shared fetch&add claim counter and the scheduling-policy bridge.

On the paper's machines every worker processor performs an atomic fetch&add
on one shared iteration index to claim work.  Here the counter is a
``multiprocessing.Value`` whose built-in lock guards the read-modify-write —
a faithful (if slower) fetch&add visible to every worker process.

Chunk sizes come from :mod:`repro.scheduling.policies`: the same policy
objects that drive the simulator drive the real runtime.  Dynamic policies
(self-scheduling, chunked, GSS) are compiled to a picklable *chunk rule*
evaluated inside the counter's critical section (GSS must read ``remaining``
atomically with the add, exactly as in Polychronopoulos & Kuck's scheme);
static policies are compiled to per-worker chunk lists so no shared counter
is needed at all.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from repro.scheduling.policies import (
    ChunkSelfScheduled,
    GuidedSelfScheduled,
    SchedulingPolicy,
    SelfScheduled,
    policy_by_name,
)

#: Picklable chunk rule: ("unit",) | ("fixed", k) | ("gss", p).
ChunkRule = tuple

#: Friendly aliases accepted anywhere a policy name is (api, cli, bench).
POLICY_ALIASES = {
    "unit": "self-sched",
    "fixed": "chunk-self-sched",
    "static": "static-block",
}


def resolve_policy(
    policy: SchedulingPolicy | str, chunk: int | None = None
) -> SchedulingPolicy:
    """Accept a policy object or a name (with aliases) and return the object."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    name = POLICY_ALIASES.get(policy, policy)
    kwargs = {}
    if name == "chunk-self-sched" and chunk is not None:
        kwargs["chunk"] = chunk
    return policy_by_name(name, **kwargs)


@dataclass(frozen=True)
class PolicyPlan:
    """How one parallel loop will be scheduled across ``workers`` processes.

    Exactly one of ``rule`` (dynamic: evaluated against the shared counter)
    and ``static`` (per-worker lists of flat 0-based ``(start, size)``
    chunks) is set.
    """

    name: str
    workers: int
    rule: ChunkRule | None = None
    static: tuple[tuple[tuple[int, int], ...], ...] | None = None


def policy_plan(
    policy: SchedulingPolicy | str,
    n: int,
    workers: int,
    chunk: int | None = None,
) -> PolicyPlan:
    """Compile a scheduling policy into a picklable execution plan."""
    policy = resolve_policy(policy, chunk)
    if policy.is_static:
        assignment = policy.static_assignment(n, workers)
        return PolicyPlan(
            policy.name,
            workers,
            static=tuple(tuple(chunks) for chunks in assignment),
        )
    if isinstance(policy, SelfScheduled):
        rule: ChunkRule = ("unit",)
    elif isinstance(policy, ChunkSelfScheduled):
        rule = ("fixed", policy.chunk)
    elif isinstance(policy, GuidedSelfScheduled):
        rule = ("gss", workers)
    else:
        raise ValueError(
            f"policy {policy.name!r} has no process-parallel chunk rule"
        )
    return PolicyPlan(policy.name, workers, rule=rule)


def chunk_size(rule: ChunkRule, remaining: int) -> int:
    """Evaluate a chunk rule; called under the counter lock."""
    kind = rule[0]
    if kind == "unit":
        return 1
    if kind == "fixed":
        return rule[1]
    if kind == "gss":
        return max(1, -(-remaining // rule[1]))
    raise ValueError(f"unknown chunk rule {rule!r}")


class SharedClaimCounter:
    """Shared iteration counter over the inclusive loop range [start, stop].

    ``claim(rule)`` atomically computes the chunk size from the rule and the
    live remaining count, advances the index (the fetch&add), and returns
    the claimed inclusive ``(lo, hi)`` — or None once the range is drained.
    Picklable into worker processes via the normal ``multiprocessing``
    inheritance machinery (fork and spawn both work).

    The range itself lives in shared memory too, so a persistent worker
    pool (:mod:`repro.parallel.pool`) can ``reset`` one counter between
    dispatches instead of creating a fresh ``Value`` per DOALL —
    synchronized objects can only cross the process boundary at spawn
    time, never through a queue.

    ``claim_batch(rule, batch)`` hands out up to ``batch`` chunks per
    critical section for the unit/fixed rules, cutting lock round-trips
    for fine-grained loops.  GSS always claims exactly one chunk per lock
    acquisition: its chunk size must be computed from the remaining count
    *at claim time* (Polychronopoulos & Kuck's atomic read-of-remaining),
    and pre-claiming future chunks would distort that schedule.
    """

    def __init__(
        self, start: int, stop: int, ctx: multiprocessing.context.BaseContext
    ) -> None:
        # state[0] = next unclaimed value, state[1] = inclusive stop
        self._state = ctx.Array("q", [start, stop])
        self.start = start

    @property
    def stop(self) -> int:
        return self._state[1]

    def reset(self, start: int, stop: int) -> None:
        """Re-arm the counter for a new loop range.

        Only safe while no worker is claiming — the pool calls this at the
        dispatch barrier, when every worker is idle awaiting its next job.
        """
        with self._state.get_lock():
            self.start = start
            self._state[0] = start
            self._state[1] = stop

    def claim(self, rule: ChunkRule) -> tuple[int, int] | None:
        batch = self.claim_batch(rule, 1)
        return batch[0] if batch else None

    def claim_batch(
        self, rule: ChunkRule, batch: int = 1
    ) -> list[tuple[int, int]]:
        """Claim up to ``batch`` chunks in one critical section.

        Returns the claimed inclusive ``(lo, hi)`` ranges in ascending
        order — an empty list once the range is drained.  GSS claims a
        single chunk regardless of ``batch`` (see class docstring).
        """
        if rule[0] == "gss":
            batch = 1
        out: list[tuple[int, int]] = []
        with self._state.get_lock():
            stop = self._state[1]
            for _ in range(max(1, batch)):
                lo = self._state[0]
                if lo > stop:
                    break
                size = chunk_size(rule, stop - lo + 1)
                hi = min(lo + size - 1, stop)
                self._state[0] = hi + 1
                out.append((lo, hi))
        return out

    @property
    def drained(self) -> bool:
        with self._state.get_lock():
            return self._state[0] > self._state[1]
