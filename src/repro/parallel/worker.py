"""Worker-process entry points: attach, claim, execute, report.

Two flavors share one claim/execute core (:func:`run_plan`):

* :func:`worker_main` — the spawn-per-dispatch worker: one process per
  DOALL dispatch, exits after reporting (the PR-1 baseline the dispatch
  bench measures against).
* :func:`pool_worker_main` — the persistent-pool worker: attaches the
  shared arrays once, then serves lightweight job descriptors from its
  private job queue until told to stop.  Chunk functions are compiled
  from source text (strings cross process boundaries under both fork and
  spawn) and cached by source, so a loop shape dispatched many times —
  one dispatch per pivot row in a hybrid program — is compiled once.

Chunk bodies execute in one of three *languages* (``job["chunk_lang"]``):

* ``"py"`` — the generated Python chunk function
  (:func:`repro.codegen.pygen.compile_chunk_source`), always present in
  the job as the safety net;
* ``"c"`` — a native kernel: the job carries a content-addressed ``.so``
  path, symbol name, and argument signature; the worker dlopens it once
  per shape (:func:`repro.codegen.cload.load_chunk_kernel` is memoized on
  ``(so_path, fname, sig)``) and calls it directly on its shared-memory
  array views (``ndarray.ctypes`` pointers — zero copies), so a claimed
  block runs entirely in native code between two fetch&adds.  Any failure
  to load or bind the kernel degrades this worker to the Python chunk for
  the dispatch; the language actually used is reported back to the parent;
* ``"numpy"`` — the whole-slice vectorized chunk
  (:func:`repro.codegen.npgen.compile_numpy_chunk`): the claimed flat
  range executes as one ``np.arange`` evaluation — the compiler-less
  fast path.  Same degradation contract as the C kernel.

Both run the paper's protocol: fetch&add a chunk (or a *batch* of chunks,
amortizing the lock round-trip) from the shared counter, execute the
claimed flat iterations, repeat until the counter is drained.  Static
plans skip the counter and walk a precomputed chunk list.

Every claim is logged as ``(lo, hi, t_claim, t_work, t_end)`` on the shared
monotonic clock so the parent can reconstruct the measured schedule
(:mod:`repro.parallel.observe`).  Failures are reported over the result
queue *and* via a nonzero exit code, so the parent detects crashes even if
the message is lost.
"""

from __future__ import annotations

import ctypes
import time
import traceback
from typing import Any, Callable

import numpy as np

from repro.codegen.pygen import compile_chunk_source
from repro.parallel.shm import attach_array


def _make_invoker(
    job: dict[str, Any], arrays: dict
) -> tuple[Callable[[int, int], None], str, dict[str, Any]]:
    """Build the ``invoke(lo, hi)`` callable for one job.

    Returns ``(invoke, lang, extra)`` where ``lang`` is the chunk
    language actually bound — ``"c"`` only when the native kernel loaded
    and every array qualifies for the zero-copy call convention;
    otherwise the Python chunk (the job always carries its source) —
    and ``extra`` is the per-job payload shipped back to the parent
    alongside the claim accounting (empty for normal dispatches).

    A *speculative* job (``job["speculate"]``) binds neither chunk
    flavor: the worker executes the dispatched loop with the recording
    interpreter, written arrays remapped to their shadow segments, and
    every claimed chunk appends ``(lo, hi, writes, reads)`` to
    ``extra["spec_log"]`` for the parent's conflict validation.
    """
    spec = job.get("speculate")
    if spec is not None:
        from repro.runtime.inspector import record_chunk

        aliases = spec["aliases"]
        watch = frozenset(spec["written"])
        exec_arrays = {
            name: arrays[aliases.get(name, name)]
            for name in job["array_order"]
        }
        env = {
            name: job["scalars"][name] for name in job["scalar_order"]
        }
        loop = spec["loop"]
        log: list = []

        def invoke_spec(lo: int, hi: int) -> None:
            reads, writes = record_chunk(
                loop, env, exec_arrays, lo, hi, watch
            )
            log.append((lo, hi, tuple(writes), tuple(reads)))

        return invoke_spec, "py", {"spec_log": log}
    if job.get("chunk_lang") == "c":
        try:
            from repro.codegen.cload import load_chunk_kernel

            fn = load_chunk_kernel(
                job["c_so"], job["c_fname"], tuple(job["c_sig"])
            )
            args: list = []
            for name in job["array_order"]:
                view = arrays[name]
                if view.dtype != np.float64 or not view.flags["C_CONTIGUOUS"]:
                    raise TypeError(
                        f"array {name!r} not C-contiguous float64"
                    )
                args.append(
                    view.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
                )
                args.extend(int(d) for d in view.shape)
            for name, ty in zip(job["scalar_order"], job["c_scalar_types"]):
                value = job["scalars"][name]
                args.append(float(value) if ty == "double" else int(value))

            def invoke(lo: int, hi: int, _fn=fn, _args=tuple(args)) -> None:
                _fn(lo, hi, *_args)

            return invoke, "c", {}
        except Exception:
            pass  # degrade to the Python chunk; the parent sees lang="py"
    if job.get("chunk_lang") == "numpy":
        try:
            from repro.codegen.npgen import compile_numpy_chunk

            np_fn = compile_numpy_chunk(job["np_source"], job["np_fname"])
            np_args = [arrays[n] for n in job["array_order"]]
            np_args += [job["scalars"][n] for n in job["scalar_order"]]

            def invoke_np(
                lo: int, hi: int, _fn=np_fn, _args=tuple(np_args)
            ) -> None:
                _fn(lo, hi, *_args)

            return invoke_np, "numpy", {}
        except Exception:
            pass  # degrade to the Python chunk; the parent sees lang="py"
    func = compile_chunk_source(job["source"], job["fname"])
    call_args = [arrays[n] for n in job["array_order"]]
    call_args += [job["scalars"][n] for n in job["scalar_order"]]

    def invoke(lo: int, hi: int, _fn=func, _args=tuple(call_args)) -> None:
        _fn(lo, hi, *_args)

    return invoke, "py", {}


def run_plan(
    wid: int, job: dict[str, Any], counter, arrays: dict
) -> tuple[int, int, int, list, str, dict[str, Any]]:
    """Execute one worker's share of a dispatch.

    Returns ``(iterations, claims, lock_ops, events, lang, extra)`` where
    ``claims`` counts executed chunks, ``lock_ops`` counts counter critical
    sections (``claims == lock_ops`` unless claims were batched), ``lang``
    is the chunk language actually executed (``"c"``/``"py"``), and
    ``extra`` carries any per-job payload (the recorded ``spec_log`` of a
    speculative dispatch; empty otherwise).

    ``job`` keys: ``source``/``fname`` (Python chunk function),
    ``chunk_lang`` plus ``c_so``/``c_fname``/``c_sig``/``c_scalar_types``
    (native kernel, optional), ``speculate`` (speculative dispatch
    descriptor, optional), ``array_order``/``scalar_order``/``scalars``
    (call convention), ``plan``
    (:class:`repro.parallel.counter.PolicyPlan`), ``lo`` (loop lower
    bound, for static chunk lists), ``batch`` (chunks per claim),
    ``log_events``.
    """
    func, lang, extra = _make_invoker(job, arrays)
    plan = job["plan"]
    log_events = job["log_events"]
    events: list[tuple[int, int, float, float, float]] = []
    iterations = 0
    claims = 0
    lock_ops = 0

    if wid >= plan.workers:
        # Pool larger than the iteration space: this worker sits the
        # dispatch out (the plan was built for plan.workers processes).
        return 0, 0, 0, events, lang, extra

    if plan.static is not None:
        lo0 = job["lo"]
        t0 = time.monotonic()
        for start, size in plan.static[wid]:
            lo, hi = lo0 + start, lo0 + start + size - 1
            t1 = time.monotonic()
            func(lo, hi)
            t2 = time.monotonic()
            if log_events:
                events.append((lo, hi, t0, t1, t2))
            iterations += size
            claims += 1
            t0 = t2
    else:
        rule = plan.rule
        batch = job.get("batch", 1)
        while True:
            t0 = time.monotonic()
            claimed = counter.claim_batch(rule, batch)
            t1 = time.monotonic()
            if not claimed:
                break
            lock_ops += 1
            for lo, hi in claimed:
                func(lo, hi)
                t2 = time.monotonic()
                if log_events:
                    events.append((lo, hi, t0, t1, t2))
                iterations += hi - lo + 1
                claims += 1
                t0 = t1 = t2
    if plan.static is not None:
        lock_ops = 0  # static plans never touch the shared counter
    return iterations, claims, lock_ops, events, lang, extra


def worker_main(wid: int, job: dict[str, Any], counter, queue) -> None:
    """Spawn-per-dispatch worker: one process, one dispatch, then exit.

    ``job`` carries everything :func:`run_plan` needs plus ``specs`` (the
    shared-memory attachment recipes).
    """
    segments = []
    failed = False
    try:
        arrays = {}
        for spec in job["specs"]:
            view, shm = attach_array(spec)
            arrays[spec.name] = view
            segments.append(shm)
        iterations, claims, lock_ops, events, lang, extra = run_plan(
            wid, job, counter, arrays
        )
        queue.put(
            ("ok", wid, iterations, claims, lock_ops, events, lang, extra)
        )
    except BaseException:
        failed = True
        try:
            queue.put(("err", wid, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already broken
            pass
    finally:
        for shm in segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - defensive
                pass
    if failed:
        raise SystemExit(1)


def pool_worker_main(wid: int, specs: list, counter, jobs, results) -> None:
    """Persistent worker: serve job descriptors until a stop message.

    ``jobs`` is this worker's private queue of ``("job", seq, job)`` /
    ``("stop",)`` messages; ``results`` is the shared result queue, fed
    one ``("ok", wid, seq, iterations, claims, lock_ops, events, lang,
    extra)`` or ``("err", wid, seq, traceback)`` message per job.

    The shared arrays are attached once, up front — each dispatch is then
    a message plus the claim loop, no fork, no re-attach.  Any specs a job
    carries beyond the initial set are attached on demand and cached by
    name *and* backing segment — a name reused over a fresh segment (each
    speculative dispatch ships newly-created shadow segments) is
    re-attached, never served stale.  Native chunk kernels are likewise
    cached for the worker's lifetime (dlopened once per shape).  A failed
    job poisons the pool: the worker reports the traceback and exits
    nonzero, and the parent tears the fleet down.
    """
    segments = []
    failed = False
    seq = None
    try:
        arrays: dict = {}
        attached: dict[str, str] = {}  # spec name -> backing segment

        def attach(spec_list) -> None:
            for spec in spec_list:
                if attached.get(spec.name) == spec.segment:
                    continue
                view, shm = attach_array(spec)
                arrays[spec.name] = view
                attached[spec.name] = spec.segment
                segments.append(shm)

        attach(specs)
        while True:
            msg = jobs.get()
            if msg[0] == "stop":
                break
            _, seq, job = msg
            attach(job.get("specs", ()))
            iterations, claims, lock_ops, events, lang, extra = run_plan(
                wid, job, counter, arrays
            )
            results.put(
                (
                    "ok", wid, seq, iterations, claims, lock_ops, events,
                    lang, extra,
                )
            )
    except BaseException:
        failed = True
        try:
            results.put(("err", wid, seq, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already broken
            pass
    finally:
        del arrays
        for shm in segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - defensive
                pass
    if failed:
        raise SystemExit(1)
