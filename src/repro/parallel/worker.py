"""Worker-process entry point: attach, claim, execute, report.

Each worker attaches the shared arrays by segment name (zero-copy), compiles
the chunk function *from source text* (strings cross process boundaries
under both fork and spawn), and then runs the paper's protocol: fetch&add a
chunk from the shared counter, execute the claimed flat iterations, repeat
until the counter is drained.  Static plans skip the counter and walk a
precomputed chunk list.

Every claim is logged as ``(lo, hi, t_claim, t_work, t_end)`` on the shared
monotonic clock so the parent can reconstruct the measured schedule
(:mod:`repro.parallel.observe`).  Failures are reported over the result
queue *and* via a nonzero exit code, so the parent detects crashes even if
the message is lost.
"""

from __future__ import annotations

import time
import traceback
from typing import Any

from repro.codegen.pygen import compile_chunk_source
from repro.parallel.shm import attach_array


def worker_main(wid: int, job: dict[str, Any], counter, queue) -> None:
    """Run one worker's share of a parallel DOALL (see module docstring).

    ``job`` keys: ``source``/``fname`` (chunk function), ``specs`` (shared
    array attachments), ``array_order``/``scalar_order``/``scalars`` (call
    convention), ``plan`` (:class:`repro.parallel.counter.PolicyPlan`),
    ``lo`` (loop lower bound, for static chunk lists), ``log_events``.
    """
    segments = []
    failed = False
    try:
        arrays = {}
        for spec in job["specs"]:
            view, shm = attach_array(spec)
            arrays[spec.name] = view
            segments.append(shm)
        func = compile_chunk_source(job["source"], job["fname"])
        call_args = [arrays[n] for n in job["array_order"]]
        call_args += [job["scalars"][n] for n in job["scalar_order"]]
        plan = job["plan"]
        log_events = job["log_events"]
        events: list[tuple[int, int, float, float, float]] = []
        iterations = 0
        claims = 0

        if plan.static is not None:
            lo0 = job["lo"]
            t0 = time.monotonic()
            for start, size in plan.static[wid]:
                lo, hi = lo0 + start, lo0 + start + size - 1
                t1 = time.monotonic()
                func(lo, hi, *call_args)
                t2 = time.monotonic()
                if log_events:
                    events.append((lo, hi, t0, t1, t2))
                iterations += size
                claims += 1
                t0 = t2
        else:
            rule = plan.rule
            while True:
                t0 = time.monotonic()
                claimed = counter.claim(rule)
                t1 = time.monotonic()
                if claimed is None:
                    break
                lo, hi = claimed
                func(lo, hi, *call_args)
                t2 = time.monotonic()
                if log_events:
                    events.append((lo, hi, t0, t1, t2))
                iterations += hi - lo + 1
                claims += 1

        queue.put(("ok", wid, iterations, claims, events))
    except BaseException:
        failed = True
        try:
            queue.put(("err", wid, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already broken
            pass
    finally:
        for shm in segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - defensive
                pass
    if failed:
        raise SystemExit(1)
