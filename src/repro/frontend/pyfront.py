"""Python frontend: restricted ``def`` functions → loop-nest IR.

The accepted subset is the loop-nest language itself, written as Python:

* ``for i in range(lo, hi)`` — serial loop over ``lo .. hi-1`` (the IR loop
  is inclusive, so the upper bound becomes ``hi - 1``); ``range(n)`` means
  ``0 .. n-1``; an optional positive constant step is allowed.
* ``for i in prange(...)`` — same, but tagged DOALL.  ``prange`` does not
  need to exist at runtime; it is recognized purely by name.
* assignments to scalars or subscripted arrays (``A[i, j] = …``), including
  augmented assignments (``+=`` etc., expanded to load-op-store),
* ``if`` / ``else`` on integer comparisons,
* arithmetic with ``+ - * / // %``, ``min``/``max``, and the intrinsics in
  :data:`repro.ir.expr.INTRINSICS` (bare name or ``math.`` attribute).

Function parameters that are ever subscripted become arrays (rank inferred
from subscript length and checked for consistency); the rest are scalars.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable

from repro.ir.expr import (
    INTRINSICS,
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    Unary,
    Var,
)
from repro.ir.stmt import Assign, Block, If, Loop, LoopKind, Procedure, Stmt

#: Names recognized as the parallel range marker.
PRANGE_NAMES = frozenset({"prange", "parallel_range"})


class FrontendError(ValueError):
    """The Python function falls outside the supported subset."""


def from_python(fn: Callable | str, name: str | None = None) -> Procedure:
    """Convert a restricted Python function (or its source) to a Procedure."""
    if callable(fn):
        src = textwrap.dedent(inspect.getsource(fn))
    else:
        src = textwrap.dedent(fn)
    tree = ast.parse(src)
    funcs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(funcs) != 1:
        raise FrontendError("source must contain exactly one function definition")
    fdef = funcs[0]
    params = [a.arg for a in fdef.args.args]
    conv = _Converter(params)
    body = conv.convert_block(fdef.body)
    outside = set(conv.array_ranks) - set(params)
    if outside:
        raise FrontendError(
            f"subscripted names must be parameters: {sorted(outside)}"
        )
    # Declaration order follows the parameter list so callers can keep the
    # original positional convention after transformation.
    arrays = {p: conv.array_ranks[p] for p in params if p in conv.array_ranks}
    scalars = tuple(p for p in params if p not in arrays)
    return Procedure(name or fdef.name, body, arrays, scalars)


_BINOP_MAP = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "floordiv",
    ast.Mod: "mod",
}

_CMP_MAP = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


class _Converter:
    def __init__(self, params: list[str]) -> None:
        self.params = params
        self.array_ranks: dict[str, int] = {}

    # -- statements --------------------------------------------------------
    def convert_block(self, stmts: list[ast.stmt]) -> Block:
        out: list[Stmt] = []
        for s in stmts:
            converted = self.convert_stmt(s)
            if converted is not None:
                out.append(converted)
        return Block(tuple(out))

    def convert_stmt(self, s: ast.stmt) -> Stmt | None:
        if isinstance(s, ast.For):
            return self._convert_for(s)
        if isinstance(s, ast.Assign):
            if len(s.targets) != 1:
                raise FrontendError("chained assignment is not supported")
            target = self._convert_target(s.targets[0])
            return Assign(target, self.convert_expr(s.value))
        if isinstance(s, ast.AugAssign):
            target = self._convert_target(s.target)
            op = _BINOP_MAP.get(type(s.op))
            if op is None:
                raise FrontendError(
                    f"unsupported augmented operator {type(s.op).__name__}"
                )
            load: Expr = target
            return Assign(target, BinOp(op, load, self.convert_expr(s.value)))
        if isinstance(s, ast.If):
            cond = self.convert_expr(s.test)
            return If(cond, self.convert_block(s.body), self.convert_block(s.orelse))
        if isinstance(s, ast.Pass):
            return None
        if isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant):
            return None  # docstring
        if isinstance(s, ast.Return):
            if s.value is None:
                return None
            raise FrontendError("return with a value is not supported")
        raise FrontendError(f"unsupported statement {type(s).__name__}")

    def _convert_for(self, s: ast.For) -> Loop:
        if s.orelse:
            raise FrontendError("for-else is not supported")
        if not isinstance(s.target, ast.Name):
            raise FrontendError("loop target must be a plain name")
        call = s.iter
        if not isinstance(call, ast.Call) or not isinstance(
            call.func, (ast.Name, ast.Attribute)
        ):
            raise FrontendError("loop iterable must be range(...) or prange(...)")
        fname = (
            call.func.id if isinstance(call.func, ast.Name) else call.func.attr
        )
        if fname == "range":
            kind = LoopKind.SERIAL
        elif fname in PRANGE_NAMES:
            kind = LoopKind.DOALL
        else:
            raise FrontendError(f"loop iterable must be range/prange, got {fname!r}")
        args = [self.convert_expr(a) for a in call.args]
        if len(args) == 1:
            lower: Expr = Const(0)
            upper = _minus_one(args[0])
            step: Expr = Const(1)
        elif len(args) == 2:
            lower, upper, step = args[0], _minus_one(args[1]), Const(1)
        elif len(args) == 3:
            lower, upper, step = args[0], _minus_one(args[1]), args[2]
            if not (isinstance(step, Const) and isinstance(step.value, int) and step.value > 0):
                raise FrontendError("range step must be a positive integer constant")
        else:
            raise FrontendError("range() takes 1-3 arguments")
        body = self.convert_block(s.body)
        return Loop(s.target.id, lower, upper, body, step, kind)

    def _convert_target(self, t: ast.expr) -> Var | ArrayRef:
        out = self.convert_expr(t)
        if isinstance(out, (Var, ArrayRef)):
            return out
        raise FrontendError("assignment target must be a name or subscript")

    # -- expressions ---------------------------------------------------------
    def convert_expr(self, e: ast.expr) -> Expr:
        if isinstance(e, ast.Constant):
            if isinstance(e.value, bool) or not isinstance(e.value, (int, float)):
                raise FrontendError(f"unsupported literal {e.value!r}")
            return Const(e.value)
        if isinstance(e, ast.Name):
            return Var(e.id)
        if isinstance(e, ast.BinOp):
            op = _BINOP_MAP.get(type(e.op))
            if op is None:
                raise FrontendError(f"unsupported operator {type(e.op).__name__}")
            return BinOp(op, self.convert_expr(e.left), self.convert_expr(e.right))
        if isinstance(e, ast.UnaryOp):
            if isinstance(e.op, ast.USub):
                operand = self.convert_expr(e.operand)
                if isinstance(operand, Const):
                    return Const(-operand.value)
                return Unary("-", operand)
            if isinstance(e.op, ast.Not):
                return Unary("not", self.convert_expr(e.operand))
            raise FrontendError(f"unsupported unary {type(e.op).__name__}")
        if isinstance(e, ast.Compare):
            if len(e.ops) != 1:
                raise FrontendError("chained comparisons are not supported")
            op = _CMP_MAP.get(type(e.ops[0]))
            if op is None:
                raise FrontendError(f"unsupported comparison {type(e.ops[0]).__name__}")
            return BinOp(
                op, self.convert_expr(e.left), self.convert_expr(e.comparators[0])
            )
        if isinstance(e, ast.BoolOp):
            op = "and" if isinstance(e.op, ast.And) else "or"
            out = self.convert_expr(e.values[0])
            for val in e.values[1:]:
                out = BinOp(op, out, self.convert_expr(val))
            return out
        if isinstance(e, ast.Subscript):
            if not isinstance(e.value, ast.Name):
                raise FrontendError("only plain-name arrays may be subscripted")
            name = e.value.id
            if isinstance(e.slice, ast.Tuple):
                indices = tuple(self.convert_expr(i) for i in e.slice.elts)
            else:
                indices = (self.convert_expr(e.slice),)
            prev = self.array_ranks.get(name)
            if prev is not None and prev != len(indices):
                raise FrontendError(
                    f"array {name!r} used with both {prev} and {len(indices)} subscripts"
                )
            self.array_ranks[name] = len(indices)
            return ArrayRef(name, indices)
        if isinstance(e, ast.Call):
            fname = None
            if isinstance(e.func, ast.Name):
                fname = e.func.id
            elif isinstance(e.func, ast.Attribute) and isinstance(
                e.func.value, ast.Name
            ):
                # math.sin(...) style
                fname = e.func.attr
            if fname in ("min", "max") and len(e.args) == 2:
                return BinOp(
                    fname, self.convert_expr(e.args[0]), self.convert_expr(e.args[1])
                )
            if fname in INTRINSICS:
                return Call(fname, tuple(self.convert_expr(a) for a in e.args))
            raise FrontendError(f"unsupported call {ast.dump(e.func)}")
        raise FrontendError(f"unsupported expression {type(e).__name__}")


def _minus_one(e: Expr) -> Expr:
    """Exclusive → inclusive upper bound."""
    if isinstance(e, Const) and isinstance(e.value, int):
        return Const(e.value - 1)
    if isinstance(e, BinOp) and e.op == "+" and e.rhs == Const(1):
        return e.lhs
    return BinOp("-", e, Const(1))
