"""Parser for the Fortran-like loop mini-language.

Grammar (keywords are case-sensitive, ``--`` starts a line comment)::

    program   := "procedure" NAME [ "(" decls ")" ] block "end"
    decls     := [arrays] [";" scalars] | scalars
    arrays    := NAME "[" INT "]" ("," NAME "[" INT "]")*
    scalars   := NAME ("," NAME)*
    block     := stmt*
    stmt      := loop | cond | assign
    loop      := ("for" | "doall") NAME "=" expr "," expr ["," expr]
                 block "end"
    cond      := "if" expr "then" block ["else" block] "end"
    assign    := lvalue ":=" expr
    lvalue    := NAME | NAME "(" expr ("," expr)* ")"

Expressions use the usual precedence with ``div`` (floor), ``mod``,
``ceildiv`` at multiplicative level, plus ``min(a,b)`` / ``max(a,b)`` and the
intrinsics of :data:`repro.ir.expr.INTRINSICS`.  The pretty-printer emits this
dialect, so ``parse(to_source(p))`` reproduces ``p``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ir.expr import (
    INTRINSICS,
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    Unary,
    Var,
)
from repro.ir.stmt import Assign, Block, If, Loop, LoopKind, Procedure, Stmt


class ParseError(ValueError):
    """Syntax error in mini-language source."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # NAME INT FLOAT OP KEYWORD EOF
    text: str
    line: int


_KEYWORDS = {
    "procedure",
    "for",
    "doall",
    "end",
    "if",
    "then",
    "else",
    "div",
    "mod",
    "ceildiv",
    "and",
    "or",
    "not",
    "min",
    "max",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>--[^\n]*)
  | (?P<newline>\n)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>:=|==|!=|<=|>=|[-+*/(),;<>\[\]=])
    """,
    re.VERBOSE,
)


def tokenize(src: str) -> list[_Token]:
    """Convert source text to a token list (raises on stray characters)."""
    tokens: list[_Token] = []
    line = 1
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if m is None:
            raise ParseError(f"unexpected character {src[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup
        text = m.group()
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            continue
        if kind == "name":
            kind = "KEYWORD" if text in _KEYWORDS else "NAME"
        elif kind == "int":
            kind = "INT"
        elif kind == "float":
            kind = "FLOAT"
        else:
            kind = "OP"
        tokens.append(_Token(kind, text, line))
    tokens.append(_Token("EOF", "", line))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    @property
    def cur(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.cur
        self.pos += 1
        return tok

    def check(self, kind: str, text: str | None = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> _Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r}", self.cur.line
            )
        return self.advance()

    # -- grammar -----------------------------------------------------------
    def parse_procedure(self) -> Procedure:
        self.expect("KEYWORD", "procedure")
        name = self.expect("NAME").text
        arrays: dict[str, int] = {}
        scalars: list[str] = []
        if self.accept("OP", "("):
            self._parse_decls(arrays, scalars)
            self.expect("OP", ")")
        body = self.parse_block(("end",))
        self.expect("KEYWORD", "end")
        self.expect("EOF")
        return Procedure(name, body, arrays, tuple(scalars))

    def _parse_decls(self, arrays: dict[str, int], scalars: list[str]) -> None:
        # Either "A[2], B[1]; n, m" or just "n, m".
        while True:
            name = self.expect("NAME").text
            if self.accept("OP", "["):
                rank = int(self.expect("INT").text)
                self.expect("OP", "]")
                arrays[name] = rank
            else:
                scalars.append(name)
            if self.accept("OP", ","):
                continue
            if self.accept("OP", ";"):
                while True:
                    scalars.append(self.expect("NAME").text)
                    if not self.accept("OP", ","):
                        return
            return

    def parse_block(self, stop: tuple[str, ...]) -> Block:
        stmts: list[Stmt] = []
        while not (self.cur.kind == "KEYWORD" and self.cur.text in stop):
            if self.cur.kind == "EOF":
                raise ParseError(f"unexpected end of input, expected {stop}", self.cur.line)
            stmts.append(self.parse_stmt())
        return Block(tuple(stmts))

    def parse_stmt(self) -> Stmt:
        if self.check("KEYWORD", "for") or self.check("KEYWORD", "doall"):
            return self.parse_loop()
        if self.check("KEYWORD", "if"):
            return self.parse_if()
        return self.parse_assign()

    def parse_loop(self) -> Loop:
        kw = self.advance().text
        kind = LoopKind.DOALL if kw == "doall" else LoopKind.SERIAL
        var = self.expect("NAME").text
        self.expect("OP", "=")
        lower = self.parse_expr()
        self.expect("OP", ",")
        upper = self.parse_expr()
        step: Expr = Const(1)
        if self.accept("OP", ","):
            step = self.parse_expr()
        body = self.parse_block(("end",))
        self.expect("KEYWORD", "end")
        return Loop(var, lower, upper, body, step, kind)

    def parse_if(self) -> If:
        self.expect("KEYWORD", "if")
        cond = self.parse_expr()
        self.expect("KEYWORD", "then")
        then = self.parse_block(("else", "end"))
        orelse = Block()
        if self.accept("KEYWORD", "else"):
            orelse = self.parse_block(("end",))
        self.expect("KEYWORD", "end")
        return If(cond, then, orelse)

    def parse_assign(self) -> Assign:
        name = self.expect("NAME").text
        if self.accept("OP", "("):
            indices = [self.parse_expr()]
            while self.accept("OP", ","):
                indices.append(self.parse_expr())
            self.expect("OP", ")")
            target: Var | ArrayRef = ArrayRef(name, tuple(indices))
        else:
            target = Var(name)
        self.expect("OP", ":=")
        return Assign(target, self.parse_expr())

    # -- expressions (precedence climbing) ----------------------------------
    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        e = self._parse_and()
        while self.accept("KEYWORD", "or"):
            e = BinOp("or", e, self._parse_and())
        return e

    def _parse_and(self) -> Expr:
        e = self._parse_cmp()
        while self.accept("KEYWORD", "and"):
            e = BinOp("and", e, self._parse_cmp())
        return e

    def _parse_cmp(self) -> Expr:
        e = self._parse_addsub()
        while self.cur.kind == "OP" and self.cur.text in (
            "==",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = self.advance().text
            e = BinOp(op, e, self._parse_addsub())
        return e

    def _parse_addsub(self) -> Expr:
        e = self._parse_muldiv()
        while self.cur.kind == "OP" and self.cur.text in ("+", "-"):
            op = self.advance().text
            e = BinOp(op, e, self._parse_muldiv())
        return e

    def _parse_muldiv(self) -> Expr:
        e = self._parse_unary()
        while True:
            if self.cur.kind == "OP" and self.cur.text in ("*", "/"):
                op = self.advance().text
                e = BinOp(op, e, self._parse_unary())
            elif self.cur.kind == "KEYWORD" and self.cur.text in (
                "div",
                "mod",
                "ceildiv",
            ):
                kw = self.advance().text
                op = {"div": "floordiv", "mod": "mod", "ceildiv": "ceildiv"}[kw]
                e = BinOp(op, e, self._parse_unary())
            else:
                return e

    def _parse_unary(self) -> Expr:
        if self.accept("OP", "-"):
            operand = self._parse_unary()
            if isinstance(operand, Const):
                return Const(-operand.value)
            return Unary("-", operand)
        if self.accept("KEYWORD", "not"):
            return Unary("not", self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> Expr:
        tok = self.cur
        if tok.kind == "INT":
            self.advance()
            return Const(int(tok.text))
        if tok.kind == "FLOAT":
            self.advance()
            return Const(float(tok.text))
        if tok.kind == "KEYWORD" and tok.text in ("min", "max"):
            self.advance()
            self.expect("OP", "(")
            a = self.parse_expr()
            self.expect("OP", ",")
            b = self.parse_expr()
            self.expect("OP", ")")
            return BinOp(tok.text, a, b)
        if tok.kind == "NAME":
            self.advance()
            if self.accept("OP", "("):
                args = [self.parse_expr()]
                while self.accept("OP", ","):
                    args.append(self.parse_expr())
                self.expect("OP", ")")
                if tok.text in INTRINSICS:
                    return Call(tok.text, tuple(args))
                return ArrayRef(tok.text, tuple(args))
            return Var(tok.text)
        if self.accept("OP", "("):
            e = self.parse_expr()
            self.expect("OP", ")")
            return e
        raise ParseError(f"unexpected token {tok.text!r}", tok.line)


def parse(src: str) -> Procedure:
    """Parse a complete ``procedure … end`` unit."""
    return _Parser(tokenize(src)).parse_procedure()


def parse_expr(src: str) -> Expr:
    """Parse a standalone expression (for tests and tools)."""
    p = _Parser(tokenize(src))
    e = p.parse_expr()
    p.expect("EOF")
    return e
