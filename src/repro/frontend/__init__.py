"""Frontends that build IR from surface syntax.

* :mod:`repro.frontend.dsl` — a Fortran-like mini-language (the dialect the
  pretty-printer emits, so source ↔ IR round-trips).
* :mod:`repro.frontend.pyfront` — restricted Python functions via the ``ast``
  module.
"""

from repro.frontend.dsl import ParseError, parse, parse_expr
from repro.frontend.pyfront import FrontendError, from_python

__all__ = ["ParseError", "parse", "parse_expr", "FrontendError", "from_python"]
