"""Iteration-space arithmetic: the ground truth behind index recovery.

:class:`IterationSpace` maps between flat (coalesced) iteration numbers and
multidimensional index tuples in plain Python.  The transformation tests use
it as the oracle the IR-level recovery expressions must agree with; the
scheduling layer uses it to translate dispatched flat ranges back to nest
coordinates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class IterationSpace:
    """Rectangular, 1-based iteration space of a normalized loop nest."""

    bounds: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("iteration space needs at least one dimension")
        for n in self.bounds:
            if not isinstance(n, int) or n < 0:
                raise ValueError(f"bounds must be non-negative integers, got {n!r}")

    @property
    def depth(self) -> int:
        return len(self.bounds)

    @property
    def size(self) -> int:
        total = 1
        for n in self.bounds:
            total *= n
        return total

    def products(self) -> tuple[int, ...]:
        """``P_k = Π_{j>k} N_j``, innermost product = 1."""
        out = [1] * self.depth
        for k in range(self.depth - 2, -1, -1):
            out[k] = out[k + 1] * self.bounds[k + 1]
        return tuple(out)

    def unrank(self, flat: int) -> tuple[int, ...]:
        """Flat index (1-based) → index tuple (1-based), lexicographic."""
        if not 1 <= flat <= self.size:
            raise ValueError(f"flat index {flat} outside 1..{self.size}")
        rem = flat - 1
        idx = []
        for p, n in zip(self.products(), self.bounds):
            q, rem = divmod(rem, p)
            idx.append(q + 1)
        return tuple(idx)

    def rank(self, index: tuple[int, ...]) -> int:
        """Index tuple (1-based) → flat index (1-based)."""
        if len(index) != self.depth:
            raise ValueError(f"index has {len(index)} coords, space has {self.depth}")
        flat = 0
        for i, n, p in zip(index, self.bounds, self.products()):
            if not 1 <= i <= n:
                raise ValueError(f"coordinate {i} outside 1..{n}")
            flat += (i - 1) * p
        return flat + 1

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return itertools.product(*[range(1, n + 1) for n in self.bounds])

    def block(self, lo: int, hi: int) -> list[tuple[int, ...]]:
        """Index tuples of the contiguous flat range ``lo..hi`` inclusive."""
        return [self.unrank(i) for i in range(lo, hi + 1)]
