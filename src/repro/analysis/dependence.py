"""Data-dependence testing: ZIV / GCD / Banerjee with direction vectors.

The tester answers: can two subscripted references to the same array touch
the same element on two iterations related by a given *direction vector*
(one of ``<``, ``=``, ``>`` per common loop)?  A loop is parallel (DOALL) at
level k exactly when no dependence exists whose direction vector carries
``<`` or ``>`` at position k with ``=`` before it.

Machinery, per array dimension:

* affine extraction (:mod:`repro.analysis.subscripts`); non-affine ⇒ assume
  dependence (conservative);
* **ZIV**: both subscripts constant ⇒ dependence iff equal;
* **GCD test**: the linear Diophantine equation must be solvable in integers;
* **Banerjee bounds**: the equation must be solvable in *reals within the
  loop bounds*, evaluated separately under each direction constraint —
  implemented exactly by enumerating the vertices of the (i, i′) order
  polytope, which is tight for linear forms.

Symbolic loop bounds are handled conservatively (treated as unbounded above).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.subscripts import AffineForm, affine_of
from repro.ir.expr import ArrayRef, Const
from repro.ir.stmt import Loop

#: Direction symbols, ordered for display.
DIRECTIONS = ("<", "=", ">")

_INF = math.inf


@dataclass(frozen=True)
class LoopInfo:
    """A loop level as the tester sees it: name plus (maybe unknown) bounds."""

    var: str
    lower: int | None
    upper: int | None

    @staticmethod
    def of(loop: Loop) -> "LoopInfo":
        lo = loop.lower.value if isinstance(loop.lower, Const) else None
        hi = loop.upper.value if isinstance(loop.upper, Const) else None
        return LoopInfo(loop.var, lo, hi)


@dataclass(frozen=True)
class Dependence:
    """A (possibly conservative) dependence between two references."""

    array: str
    kind: str  # "flow", "anti", "output"
    directions: tuple[str, ...]  # per common loop, outermost first
    exact: bool  # False when assumed conservatively

    def carried_level(self) -> int | None:
        """First level with a non-'=' direction (0-based), or None (loop
        independent)."""
        for k, d in enumerate(self.directions):
            if d != "=":
                return k
        return None


def _interval_mul(coeff: int, lo: float, hi: float) -> tuple[float, float]:
    """Range of ``coeff · x`` for x in [lo, hi] (handles ±inf, coeff 0)."""
    if coeff == 0:
        return (0.0, 0.0)
    a, b = coeff * lo, coeff * hi
    return (min(a, b), max(a, b))


def _vertices_for_direction(
    direction: str, lo: float, hi: float
) -> list[tuple[float, float]]:
    """Vertices of {(i, i′) : lo ≤ i, i′ ≤ hi, i direction i′}.

    Linear forms attain extrema at vertices; for unbounded regions the
    "vertices" include ±inf corners, which propagate through
    :func:`_interval_mul` correctly.
    """
    if direction == "=":
        return [(lo, lo), (hi, hi)]
    if direction == "<":
        if hi - lo < 1:
            return []  # i < i' impossible in a width-<1 range
        return [(lo, lo + 1), (lo, hi), (hi - 1, hi)]
    if direction == ">":
        if hi - lo < 1:
            return []
        return [(lo + 1, lo), (hi, lo), (hi, hi - 1)]
    raise ValueError(f"unknown direction {direction!r}")


def _term_range(
    a: int, b: int, direction: str, lo: float, hi: float
) -> tuple[float, float] | None:
    """Range of ``a·i − b·i′`` under the direction constraint, or None if
    the constraint is unsatisfiable."""
    verts = _vertices_for_direction(direction, lo, hi)
    if not verts:
        return None
    if math.isfinite(lo) and math.isfinite(hi):
        values = [a * i - b * j for i, j in verts]
        return (min(values), max(values))
    # Unbounded range: vertex evaluation would form ``inf - inf``.
    # Substitute i′ = i + d (``<``) or i = i′ + d (``>``) with d >= 1 and
    # range the decoupled form by interval arithmetic — exact for ``=``
    # (the form collapses to (a-b)·i) and a sound superset otherwise.
    if direction == "=":
        return _interval_mul(a - b, lo, hi)
    base = _interval_mul(a - b, lo, hi - 1)
    step = _interval_mul(-b if direction == "<" else a, 1.0, hi - lo)
    return (base[0] + step[0], base[1] + step[1])


def _gcd_feasible(coeffs: Iterable[int], delta: int) -> bool:
    """Solvable as a linear Diophantine equation?"""
    g = 0
    for a in coeffs:
        g = math.gcd(g, abs(a))
    if g == 0:
        return delta == 0
    return delta % g == 0


class DependenceTester:
    """Tests a pair of references under common loops.

    ``common``: the loops enclosing *both* references, outermost first.
    ``extra_src`` / ``extra_sink``: loops enclosing only one side (e.g. when
    the two statements sit in sibling inner loops); their indices range
    freely.
    """

    def __init__(
        self,
        common: Sequence[LoopInfo],
        extra_src: Sequence[LoopInfo] = (),
        extra_sink: Sequence[LoopInfo] = (),
    ) -> None:
        self.common = list(common)
        self.extra_src = list(extra_src)
        self.extra_sink = list(extra_sink)

    # -- single dimension ------------------------------------------------
    def _dimension_feasible(
        self,
        f: AffineForm | None,
        g: AffineForm | None,
        directions: Sequence[str],
    ) -> bool:
        """Can f(i) == g(i′) hold under the direction constraints?"""
        if f is None or g is None:
            return True  # non-affine: assume dependence
        # ZIV
        if f.is_constant and g.is_constant:
            return f.const == g.const

        delta = g.const - f.const  # move constants right: Σ terms = delta

        # GCD over every index coefficient (source and sink treated as
        # distinct unknowns).
        coeffs: list[int] = []
        for info in self.common:
            coeffs.append(f.coeff(info.var))
            coeffs.append(g.coeff(info.var))
        for info in self.extra_src:
            coeffs.append(f.coeff(info.var))
        for info in self.extra_sink:
            coeffs.append(g.coeff(info.var))
        if not _gcd_feasible(coeffs, delta):
            return False

        # Banerjee: range of Σ (a_v·i_v − b_v·i′_v) over the constrained box.
        total_lo, total_hi = 0.0, 0.0
        for info, direction in zip(self.common, directions):
            a, b = f.coeff(info.var), g.coeff(info.var)
            lo = info.lower if info.lower is not None else -_INF
            hi = info.upper if info.upper is not None else _INF
            rng = _term_range(a, b, direction, lo, hi)
            if rng is None:
                return False
            total_lo += rng[0]
            total_hi += rng[1]
        for info in self.extra_src:
            a = f.coeff(info.var)
            lo = info.lower if info.lower is not None else -_INF
            hi = info.upper if info.upper is not None else _INF
            r = _interval_mul(a, lo, hi)
            total_lo += r[0]
            total_hi += r[1]
        for info in self.extra_sink:
            b = g.coeff(info.var)
            lo = info.lower if info.lower is not None else -_INF
            hi = info.upper if info.upper is not None else _INF
            r = _interval_mul(-b, lo, hi)
            total_lo += r[0]
            total_hi += r[1]
        return total_lo <= delta <= total_hi

    # -- whole reference pair ------------------------------------------------
    def feasible_directions(
        self, src: ArrayRef, sink: ArrayRef
    ) -> list[tuple[str, ...]]:
        """All direction vectors under which src and sink may collide."""
        if src.name != sink.name:
            return []
        loop_vars = [info.var for info in self.common]
        loop_vars += [info.var for info in self.extra_src]
        loop_vars += [info.var for info in self.extra_sink]
        fs = [affine_of(e, loop_vars) for e in src.indices]
        gs = [affine_of(e, loop_vars) for e in sink.indices]

        out: list[tuple[str, ...]] = []
        for directions in itertools.product(DIRECTIONS, repeat=len(self.common)):
            ok = all(
                self._dimension_feasible(f, g, directions)
                for f, g in zip(fs, gs)
            )
            if ok:
                out.append(directions)
        return out


def direction_vectors(
    src: ArrayRef,
    sink: ArrayRef,
    common: Sequence[Loop],
    extra_src: Sequence[Loop] = (),
    extra_sink: Sequence[Loop] = (),
) -> list[tuple[str, ...]]:
    """Feasible direction vectors for two references under common loops."""
    tester = DependenceTester(
        [LoopInfo.of(lp) for lp in common],
        [LoopInfo.of(lp) for lp in extra_src],
        [LoopInfo.of(lp) for lp in extra_sink],
    )
    return tester.feasible_directions(src, sink)


def has_dependence(
    src: ArrayRef,
    sink: ArrayRef,
    common: Sequence[Loop],
) -> bool:
    """True when any direction vector (including all-'=') is feasible."""
    return bool(direction_vectors(src, sink, common))
