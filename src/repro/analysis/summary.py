"""Human-readable analysis reports: the compiler's ``-v`` output.

:func:`analyze_procedure` runs the dependence analyser over every loop and
dry-runs the coalescing planner, producing a structured summary (and a
formatted text report) of

* each loop's verdict (DOALL / serial) and *why* it is serial — the carried
  dependences or the offending scalars,
* which maximal nests the coalescer would transform and at what depth,
* which of those additionally qualify for recovery-free collapsing.

The CLI exposes this as ``python -m repro file.loop --analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.doall import (
    _scalar_writes,
    classify_loop,
    loop_carried_dependences,
    upward_exposed_scalars,
)
from repro.ir.printer import to_source
from repro.ir.stmt import Block, If, Loop, Procedure, Stmt
from repro.transforms.base import TransformError, used_names
from repro.transforms.coalesce import coalesce
from repro.transforms.collapse import collapse


@dataclass(frozen=True)
class LoopVerdict:
    """Analysis outcome for one loop."""

    var: str
    level: int  # nesting depth, 0 = outermost
    source_kind: str  # how the loop was tagged in the input
    parallel: bool  # the analyser's verdict
    carried_arrays: tuple[str, ...]  # arrays with carried dependences
    blocking_scalars: tuple[str, ...]  # exposed written scalars


@dataclass(frozen=True)
class NestPlan:
    """What the coalescer would do with one maximal DOALL nest."""

    index_vars: tuple[str, ...]
    depth: int
    total: str  # flat trip count, printed
    collapse_eligible: bool


@dataclass
class ProcedureSummary:
    name: str
    verdicts: list[LoopVerdict] = field(default_factory=list)
    plans: list[NestPlan] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"analysis of procedure {self.name!r}", ""]
        lines.append("loops:")
        for verdict in self.verdicts:
            indent = "  " * (verdict.level + 1)
            tag = "DOALL" if verdict.parallel else "serial"
            note = ""
            if not verdict.parallel:
                reasons = []
                if verdict.carried_arrays:
                    reasons.append(
                        "carried dependence on "
                        + ", ".join(verdict.carried_arrays)
                    )
                if verdict.blocking_scalars:
                    reasons.append(
                        "scalar flow through "
                        + ", ".join(verdict.blocking_scalars)
                    )
                if reasons:
                    note = f"  ({'; '.join(reasons)})"
                else:
                    note = "  (conservative)"
            src = f" [tagged {verdict.source_kind}]"
            lines.append(f"{indent}{verdict.var}: {tag}{src}{note}")
        lines.append("")
        if self.plans:
            lines.append("coalescing plan:")
            for plan in self.plans:
                extra = ", collapse-eligible" if plan.collapse_eligible else ""
                lines.append(
                    f"  ({', '.join(plan.index_vars)}) depth={plan.depth} "
                    f"-> one loop of {plan.total} iterations{extra}"
                )
        else:
            lines.append("coalescing plan: nothing to coalesce (no DOALL "
                         "nest of depth >= 2)")
        return "\n".join(lines)


def _verdict_for(loop: Loop, outer: tuple[Loop, ...]) -> LoopVerdict:
    parallel = classify_loop(loop, outer)
    carried: tuple[str, ...] = ()
    scalars: tuple[str, ...] = ()
    if not parallel:
        deps = loop_carried_dependences(loop, outer)
        carried = tuple(sorted({d.array for d in deps}))
        exposed, _ = upward_exposed_scalars(loop.body)
        bound = {loop.var} | {lp.var for lp in outer}
        scalars = tuple(sorted((exposed - bound) & _scalar_writes(loop.body)))
    return LoopVerdict(
        var=loop.var,
        level=len(outer),
        source_kind=str(loop.kind),
        parallel=parallel,
        carried_arrays=carried,
        blocking_scalars=scalars,
    )


def analyze_procedure(proc: Procedure) -> ProcedureSummary:
    """Analyse every loop and plan coalescing (without transforming)."""
    from repro.analysis.doall import mark_doall

    summary = ProcedureSummary(proc.name)

    def walk(s: Stmt, outer: tuple[Loop, ...]) -> None:
        if isinstance(s, Block):
            for child in s.stmts:
                walk(child, outer)
        elif isinstance(s, If):
            walk(s.then, outer)
            walk(s.orelse, outer)
        elif isinstance(s, Loop):
            summary.verdicts.append(_verdict_for(s, outer))
            walk(s.body, outer + (s,))

    walk(proc.body, ())

    # Plan on the analysed (re-tagged) procedure, mirroring the pipeline.
    tagged = mark_doall(proc)
    pool = used_names(tagged)

    def plan(s: Stmt) -> None:
        if isinstance(s, Block):
            for child in s.stmts:
                plan(child)
        elif isinstance(s, If):
            plan(s.then)
            plan(s.orelse)
        elif isinstance(s, Loop):
            planned = False
            if s.is_doall:
                try:
                    result = coalesce(s, auto_normalize=True, used=set(pool))
                except TransformError:
                    result = None
                if result is not None and result.depth >= 2:
                    eligible = True
                    try:
                        collapse(s, used=set(pool))
                    except TransformError:
                        eligible = False
                    summary.plans.append(
                        NestPlan(
                            index_vars=result.index_vars,
                            depth=result.depth,
                            total=to_source(result.loop.upper),
                            collapse_eligible=eligible,
                        )
                    )
                    planned = True
            if not planned:
                plan(s.body)

    plan(tagged.body)
    return summary
