"""Affine subscript extraction.

Dependence tests operate on subscripts of the form
``a₁·i₁ + a₂·i₂ + … + c`` with integer coefficients over the enclosing loop
indices.  :func:`affine_of` recognizes that form structurally; anything else
(symbolic scalars, products of indices, intrinsics, array loads inside a
subscript) returns ``None`` and the dependence tester treats the pair
conservatively (dependence assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.ir.expr import BinOp, Const, Expr, Unary, Var


@dataclass(frozen=True)
class AffineForm:
    """``Σ coeffs[v]·v + const`` with integer coefficients."""

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def from_dict(coeffs: dict[str, int], const: int) -> "AffineForm":
        items = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return AffineForm(items, const)

    def as_dict(self) -> dict[str, int]:
        return dict(self.coeffs)

    def coeff(self, var: str) -> int:
        return self.as_dict().get(var, 0)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "AffineForm") -> "AffineForm":
        out = self.as_dict()
        for v, c in other.coeffs:
            out[v] = out.get(v, 0) + c
        return AffineForm.from_dict(out, self.const + other.const)

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self + other.scale(-1)

    def scale(self, k: int) -> "AffineForm":
        return AffineForm.from_dict(
            {v: c * k for v, c in self.coeffs}, self.const * k
        )

    def evaluate(self, env: dict[str, int]) -> int:
        return self.const + sum(c * env[v] for v, c in self.coeffs)


def affine_of(expr: Expr, loop_vars: Iterable[str]) -> AffineForm | None:
    """Extract an affine form over ``loop_vars``, or None if not affine.

    Variables outside ``loop_vars`` (symbolic problem sizes etc.) make the
    subscript non-affine *for dependence purposes* — their runtime value is
    unknown, so no exact test applies.
    """
    allowed = set(loop_vars)

    def go(e: Expr) -> AffineForm | None:
        if isinstance(e, Const):
            if isinstance(e.value, int):
                return AffineForm((), e.value)
            return None
        if isinstance(e, Var):
            if e.name in allowed:
                return AffineForm(((e.name, 1),), 0)
            return None
        if isinstance(e, Unary) and e.op == "-":
            inner = go(e.operand)
            return None if inner is None else inner.scale(-1)
        if isinstance(e, BinOp):
            if e.op == "+":
                a, b = go(e.lhs), go(e.rhs)
                if a is None or b is None:
                    return None
                return a + b
            if e.op == "-":
                a, b = go(e.lhs), go(e.rhs)
                if a is None or b is None:
                    return None
                return a - b
            if e.op == "*":
                a, b = go(e.lhs), go(e.rhs)
                if a is None or b is None:
                    return None
                if a.is_constant:
                    return b.scale(a.const)
                if b.is_constant:
                    return a.scale(b.const)
                return None  # index × index: not affine
            return None
        return None

    return go(expr)
