"""DOALL classification: which loops may legally run in parallel?

A loop is DOALL when no dependence is *carried* by it: for every pair of
references to the same array (at least one a write) in its body, no
dependence exists whose direction at this loop's level is ``<`` or ``>``
(outer loops held at ``=``), and every scalar written in the body is
*private* — defined before any use on every path through one iteration.

The classifier is conservative: non-affine subscripts, symbolic coefficients,
or scalar flow it cannot prove private all demote the loop to serial.
Reductions (``s := s + …``) are likewise serial *here*; recognizing and
re-tagging them for the partial-accumulator dispatch mode is the job of
:mod:`repro.analysis.pdg` and :mod:`repro.transforms.reduction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.dependence import Dependence, DependenceTester, LoopInfo
from repro.ir.expr import ArrayRef, Expr, Var
from repro.ir.stmt import Assign, Block, If, Loop, LoopKind, Procedure, Stmt
from repro.ir.visitor import walk_exprs


@dataclass(frozen=True)
class AccessInfo:
    """One array access and the loops (inside the tested loop) enclosing it."""

    ref: ArrayRef
    is_write: bool
    inner_chain: tuple[Loop, ...]


def collect_accesses(body: Block, chain: tuple[Loop, ...] = ()) -> list[AccessInfo]:
    """All array accesses in ``body`` with their inner-loop chains."""
    out: list[AccessInfo] = []

    def exprs_reads(e: Expr) -> None:
        for sub in walk_exprs(e):
            if isinstance(sub, ArrayRef):
                out.append(AccessInfo(sub, False, chain))

    for s in body.stmts:
        if isinstance(s, Assign):
            if isinstance(s.target, ArrayRef):
                out.append(AccessInfo(s.target, True, chain))
                for idx in s.target.indices:
                    exprs_reads(idx)
            exprs_reads(s.value)
        elif isinstance(s, If):
            exprs_reads(s.cond)
            out.extend(collect_accesses(s.then, chain))
            out.extend(collect_accesses(s.orelse, chain))
        elif isinstance(s, Loop):
            exprs_reads(s.lower)
            exprs_reads(s.upper)
            exprs_reads(s.step)
            out.extend(collect_accesses(s.body, chain + (s,)))
    return out


def _scalar_reads(e: Expr) -> set[str]:
    return {sub.name for sub in walk_exprs(e) if isinstance(sub, Var)}


def upward_exposed_scalars(body: Block, written: set[str] | None = None) -> tuple[set[str], set[str]]:
    """Scalars read before any same-iteration write, plus definite writes.

    Returns ``(exposed, written_after)``.  Conditional writes only count as
    definite when they occur on both branches; loop bodies may execute zero
    times, so their writes never count as definite.
    """
    written = set(written or ())
    exposed: set[str] = set()
    for s in body.stmts:
        if isinstance(s, Assign):
            reads = _scalar_reads(s.value)
            if isinstance(s.target, ArrayRef):
                for idx in s.target.indices:
                    reads |= _scalar_reads(idx)
            exposed |= reads - written
            if isinstance(s.target, Var):
                written.add(s.target.name)
        elif isinstance(s, If):
            exposed |= _scalar_reads(s.cond) - written
            e1, w1 = upward_exposed_scalars(s.then, written)
            e2, w2 = upward_exposed_scalars(s.orelse, written)
            exposed |= e1 | e2
            written = w1 & w2
        elif isinstance(s, Loop):
            for bound in (s.lower, s.upper, s.step):
                exposed |= _scalar_reads(bound) - written
            inner_written = set(written) | {s.var}
            e1, _ = upward_exposed_scalars(s.body, inner_written)
            exposed |= e1
            # zero-trip possibility: writes inside do not become definite
    return exposed, written


def _scalar_writes(body: Block) -> set[str]:
    out: set[str] = set()
    for s in body.stmts:
        if isinstance(s, Assign) and isinstance(s.target, Var):
            out.add(s.target.name)
        elif isinstance(s, If):
            out |= _scalar_writes(s.then)
            out |= _scalar_writes(s.orelse)
        elif isinstance(s, Loop):
            out |= _scalar_writes(s.body)
    return out


def _common_prefix(a: tuple[Loop, ...], b: tuple[Loop, ...]) -> int:
    k = 0
    while k < len(a) and k < len(b) and a[k] is b[k]:
        k += 1
    return k


def loop_carried_dependences(
    loop: Loop, outer: Sequence[Loop] = ()
) -> list[Dependence]:
    """Dependences carried by ``loop`` (direction ``<``/``>`` at its level).

    ``outer`` is the chain of loops enclosing ``loop``; their indices are
    held equal on both sides of every tested pair.
    """
    accesses = collect_accesses(loop.body)
    found: list[Dependence] = []
    seen: set[tuple] = set()

    for src in accesses:
        if not src.is_write:
            continue
        for sink in accesses:
            if src.ref.name != sink.ref.name:
                continue
            if not (src.is_write or sink.is_write):
                continue
            k = _common_prefix(src.inner_chain, sink.inner_chain)
            common = list(outer) + [loop] + list(src.inner_chain[:k])
            extra_src = src.inner_chain[k:]
            extra_sink = sink.inner_chain[k:]
            tester = DependenceTester(
                [LoopInfo.of(lp) for lp in common],
                [LoopInfo.of(lp) for lp in extra_src],
                [LoopInfo.of(lp) for lp in extra_sink],
            )
            level = len(outer)  # position of `loop` in the common vector
            for directions in tester.feasible_directions(src.ref, sink.ref):
                if any(d != "=" for d in directions[:level]):
                    continue  # outer iterations differ: not carried here
                if directions[level] == "=":
                    continue  # loop-independent or carried deeper
                kind = "output" if sink.is_write else "flow"
                key = (src.ref, sink.ref, directions)
                if key in seen:
                    continue
                seen.add(key)
                found.append(
                    Dependence(src.ref.name, kind, directions, exact=True)
                )
    return found


def classify_loop(loop: Loop, outer: Sequence[Loop] = ()) -> bool:
    """True when ``loop`` is provably parallel (DOALL)."""
    # Scalar criterion: every scalar written in the body must be private.
    exposed, _ = upward_exposed_scalars(loop.body)
    bound_here = {loop.var} | {lp.var for lp in outer}
    problematic = (exposed - bound_here) & _scalar_writes(loop.body)
    if problematic:
        return False
    # Array criterion: no carried dependence.
    return not loop_carried_dependences(loop, outer)


def interchange_legal(outer_loop: Loop, outer: Sequence[Loop] = ()) -> bool:
    """May ``outer_loop`` be interchanged with its (perfectly nested) inner?

    Interchange is illegal only for dependences with direction ``(<, >)``
    over the pair — swapping would reverse their source and sink.
    """
    body = outer_loop.body
    if len(body) != 1 or not isinstance(body.stmts[0], Loop):
        return False
    inner = body.stmts[0]
    accesses = collect_accesses(inner.body)
    level = len(outer)
    for src in accesses:
        if not src.is_write:
            continue
        for sink in accesses:
            if src.ref.name != sink.ref.name:
                continue
            if not (src.is_write or sink.is_write):
                continue
            k = _common_prefix(src.inner_chain, sink.inner_chain)
            common = list(outer) + [outer_loop, inner] + list(src.inner_chain[:k])
            tester = DependenceTester(
                [LoopInfo.of(lp) for lp in common],
                [LoopInfo.of(lp) for lp in src.inner_chain[k:]],
                [LoopInfo.of(lp) for lp in sink.inner_chain[k:]],
            )
            for directions in tester.feasible_directions(src.ref, sink.ref):
                if any(d != "=" for d in directions[:level]):
                    continue
                pair = directions[level : level + 2]
                if pair == ("<", ">"):
                    return False
    return True


def mark_doall(proc: Procedure) -> Procedure:
    """Re-tag every loop with the analyser's verdict.

    Loops proven independent become DOALL; everything else becomes SERIAL —
    including loops the input optimistically tagged DOALL that the analyser
    cannot prove (the safe direction).
    """

    def go(s: Stmt, outer: tuple[Loop, ...]) -> Stmt:
        if isinstance(s, Block):
            return Block(tuple(go(x, outer) for x in s.stmts))
        if isinstance(s, If):
            t = go(s.then, outer)
            o = go(s.orelse, outer)
            assert isinstance(t, Block) and isinstance(o, Block)
            return If(s.cond, t, o)
        if isinstance(s, Loop):
            kind = LoopKind.DOALL if classify_loop(s, outer) else LoopKind.SERIAL
            body = go(s.body, outer + (s,))
            assert isinstance(body, Block)
            return Loop(s.var, s.lower, s.upper, body, s.step, kind)
        return s

    body = go(proc.body, ())
    assert isinstance(body, Block)
    return proc.with_body(body)
