"""Statement-level program dependence graph (PDG) with SCC condensation.

The verifier (:mod:`repro.analysis.safety`) judges a dispatch as a whole;
this module looks *inside* a loop body, one top-level statement at a
time, so the transform layer can stop treating partially-parallel loops
as all-or-nothing:

* **nodes** are the top-level statements of one loop body (index = the
  statement's position in ``loop.body.stmts``);
* **edges** are typed dependences — ``flow`` (write then read), ``anti``
  (read then overwrite), ``output`` (write then write) from the
  Banerjee/direction-vector machinery of
  :mod:`repro.analysis.dependence`, plus conservative ``scalar`` def-use
  edges (a scalar is one memory cell, so any shared touch with a write
  orders two statements both ways);
* each array edge carries its **direction vector** (outer loops first,
  the analyzed loop last, then any shared inner loops) and a
  ``carried`` bit: carried edges cross iterations of the analyzed loop,
  loop-independent edges order statements within one iteration.

Edges are oriented source-executes-before-sink.  For a statement pair
``(a, b)`` a dependence exists a→b when the direction at the analyzed
loop's level is ``<`` (an earlier iteration of *a* reaches a later
iteration of *b*) or ``=`` with *a* textually before *b*; ``>``
directions are covered by enumerating the reversed ordered pair.  Self
edges (``a == b``, carried) are kept: a statement in a dependence cycle
with itself must stay serial, and the SCC condensation below treats such
a singleton as cyclic.

On top of the graph: a self-contained iterative **Tarjan SCC** (the
strict-typed analysis layer takes no networkx dependency) and a
condensation in topological order — the legality skeleton for loop
fission (:mod:`repro.transforms.fission`).

This module also hosts **reduction recognition** shared by the safety
verifier, the transform layer, and the mp runtime: ``s := s ⊕ expr``
(``⊕`` one of ``+ * min max``, optionally under a guard that does not
read ``s``) is the idiom the runtime can execute as per-chunk partial
accumulators with a deterministic ordered combine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.dependence import DependenceTester, LoopInfo
from repro.analysis.doall import AccessInfo, collect_accesses
from repro.ir.expr import BinOp, Const, Expr, Var
from repro.ir.stmt import Assign, Block, If, Loop, Stmt
from repro.ir.visitor import walk_exprs, walk_stmts

__all__ = [
    "PDG",
    "PDGEdge",
    "REDUCTION_IDENTITY",
    "Reduction",
    "build_pdg",
    "recognize_reduction",
]


@dataclass(frozen=True)
class PDGEdge:
    """One dependence between two top-level statements of a loop body.

    ``src`` executes (some instance) before ``dst``.  ``directions`` is
    the feasible direction vector for array edges — positions cover the
    outer serial loops, then the analyzed loop, then shared inner loops
    — and empty for scalar edges (always conservative, always ordered
    both ways).  ``carried`` marks edges that cross iterations of the
    analyzed loop; loop-independent edges merely order statements inside
    one iteration and never force two statements into one loop.
    """

    src: int
    dst: int
    kind: str  # "flow" | "anti" | "output" | "scalar"
    var: str  # array or scalar name carrying the dependence
    directions: tuple[str, ...]
    carried: bool

    def describe(self) -> str:
        span = (
            f" at directions ({', '.join(self.directions)})"
            if self.directions
            else ""
        )
        flavor = "carried" if self.carried else "loop-independent"
        return (
            f"S{self.src} -> S{self.dst}: {flavor} {self.kind} "
            f"dependence on '{self.var}'{span}"
        )


@dataclass(frozen=True)
class PDG:
    """The dependence graph over one loop body's top-level statements."""

    loop: Loop
    stmts: tuple[Stmt, ...]
    edges: tuple[PDGEdge, ...]

    def successors(self, node: int) -> list[int]:
        return sorted({e.dst for e in self.edges if e.src == node})

    def edges_between(self, src: int, dst: int) -> list[PDGEdge]:
        return [e for e in self.edges if e.src == src and e.dst == dst]

    def has_self_cycle(self, node: int) -> bool:
        return any(
            e.src == node and e.dst == node and e.carried
            for e in self.edges
        )

    def sccs(self) -> tuple[tuple[int, ...], ...]:
        """Strongly connected components in topological order.

        Iterative Tarjan; components come out in reverse topological
        order, so the result is reversed before returning.  Only carried
        edges *and* loop-independent edges both participate in SCC
        formation — a loop-independent cycle (mutual scalar touches in
        one iteration) still pins statements together.
        """
        n = len(self.stmts)
        succ: dict[int, list[int]] = {k: [] for k in range(n)}
        for e in self.edges:
            if e.src != e.dst and e.dst not in succ[e.src]:
                succ[e.src].append(e.dst)
        index: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        out: list[tuple[int, ...]] = []
        counter = 0

        for root in range(n):
            if root in index:
                continue
            # Each work item: (node, iterator over its successors).
            work: list[tuple[int, Iterator[int]]] = [(root, iter(succ[root]))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for child in it:
                    if child not in index:
                        index[child] = low[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(succ[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp: list[int] = []
                    while True:
                        top = stack.pop()
                        on_stack.discard(top)
                        comp.append(top)
                        if top == node:
                            break
                    out.append(tuple(sorted(comp)))
        out.reverse()
        return tuple(out)

    def cyclic(self, component: tuple[int, ...]) -> bool:
        """Must this component stay inside one (serial) loop?

        True for multi-statement components and for singletons with a
        carried self dependence.
        """
        if len(component) > 1:
            return True
        return self.has_self_cycle(component[0])

    def blocking_edges(
        self, component: tuple[int, ...]
    ) -> list[PDGEdge]:
        """The edges that make ``component`` cyclic (internal edges)."""
        members = set(component)
        return [
            e
            for e in self.edges
            if e.src in members
            and e.dst in members
            and (len(members) > 1 or e.carried)
        ]

    def to_dict(self) -> dict[str, object]:
        return {
            "loop": self.loop.var,
            "statements": len(self.stmts),
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "kind": e.kind,
                    "var": e.var,
                    "directions": list(e.directions),
                    "carried": e.carried,
                }
                for e in self.edges
            ],
            "sccs": [list(c) for c in self.sccs()],
        }


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def _scalar_reads(s: Stmt) -> set[str]:
    """Scalar names read in ``s``, excluding loops' own induction vars."""
    bound = {lp.var for lp in walk_stmts(s) if isinstance(lp, Loop)}
    return {
        e.name for e in walk_exprs(s) if isinstance(e, Var)
    } - bound


def _scalar_writes(s: Stmt) -> set[str]:
    return {
        sub.target.name
        for sub in walk_stmts(s)
        if isinstance(sub, Assign) and isinstance(sub.target, Var)
    }


def _dep_kind(src_write: bool, sink_write: bool) -> str:
    if src_write and sink_write:
        return "output"
    return "flow" if src_write else "anti"


def _common_prefix(a: tuple[Loop, ...], b: tuple[Loop, ...]) -> int:
    k = 0
    while k < len(a) and k < len(b) and a[k] is b[k]:
        k += 1
    return k


def _array_edges(
    a: int,
    b: int,
    acc_a: Sequence[AccessInfo],
    acc_b: Sequence[AccessInfo],
    loop: Loop,
    outer: Sequence[Loop],
) -> list[PDGEdge]:
    """Typed dependence edges a→b via array elements.

    Keeps a vector when statement *a*'s access can precede statement
    *b*'s: direction ``<`` at the analyzed loop's level (carried), or
    ``=`` with *a* textually before *b* (loop independent).  Outer
    serial loops are pinned ``=`` — a dispatch happens within one outer
    iteration.
    """
    level = len(outer)
    edges: list[PDGEdge] = []
    seen: set[tuple[str, str, tuple[str, ...], bool]] = set()
    textual_forward = a < b
    for src in acc_a:
        for sink in acc_b:
            if src.ref.name != sink.ref.name:
                continue
            if not (src.is_write or sink.is_write):
                continue
            k = _common_prefix(src.inner_chain, sink.inner_chain)
            common = list(outer) + [loop] + list(src.inner_chain[:k])
            tester = DependenceTester(
                [LoopInfo.of(lp) for lp in common],
                [LoopInfo.of(lp) for lp in src.inner_chain[k:]],
                [LoopInfo.of(lp) for lp in sink.inner_chain[k:]],
            )
            for directions in tester.feasible_directions(src.ref, sink.ref):
                if any(d != "=" for d in directions[:level]):
                    continue  # a different outer iteration
                d = directions[level]
                if d == ">":
                    continue  # covered by the reversed ordered pair
                carried = d == "<"
                if not carried and not textual_forward:
                    continue  # same iteration, b executes first
                if not carried and a == b:
                    continue  # one statement instance: no ordering
                kind = _dep_kind(src.is_write, sink.is_write)
                key = (kind, src.ref.name, directions, carried)
                if key in seen:
                    continue
                seen.add(key)
                edges.append(
                    PDGEdge(a, b, kind, src.ref.name, directions, carried)
                )
    return edges


def build_pdg(loop: Loop, outer: Sequence[Loop] = ()) -> PDG:
    """The PDG over ``loop``'s top-level body statements.

    ``outer`` is the chain of loops enclosing ``loop``; their indices
    are held equal on both sides of every tested pair (the transform
    layer splits one loop at a time, in place).
    """
    stmts = tuple(loop.body.stmts)
    accesses = [collect_accesses(Block((s,))) for s in stmts]
    reads = [_scalar_reads(s) for s in stmts]
    writes = [_scalar_writes(s) for s in stmts]
    bound = {loop.var} | {lp.var for lp in outer}

    edges: list[PDGEdge] = []
    for a in range(len(stmts)):
        for b in range(len(stmts)):
            edges.extend(
                _array_edges(a, b, accesses[a], accesses[b], loop, outer)
            )
            # Scalars: one memory cell — any shared touch with at least
            # one write orders the statements both ways across
            # iterations (conservative; induction variables excluded).
            if a == b:
                continue
            shared = (
                (writes[a] & ((reads[b] | writes[b]) - bound))
                | (writes[b] & (reads[a] - bound))
            )
            for name in sorted(shared):
                edges.append(PDGEdge(a, b, "scalar", name, (), True))
    # Scalar self edges: a statement that reads a scalar it also writes
    # (``s := s + …``) carries a value into its own next iteration.
    for k in range(len(stmts)):
        for name in sorted((writes[k] & reads[k]) - bound):
            edges.append(PDGEdge(k, k, "scalar", name, (), True))
    return PDG(loop, stmts, tuple(edges))


# ---------------------------------------------------------------------------
# reduction recognition
# ---------------------------------------------------------------------------

#: Identity element per reduction operator (float arithmetic).
REDUCTION_IDENTITY: dict[str, float] = {
    "+": 0.0,
    "*": 1.0,
    "min": float("inf"),
    "max": float("-inf"),
}


@dataclass(frozen=True)
class Reduction:
    """A recognized ``s := s ⊕ expr`` accumulation loop.

    ``update`` is the ⊕-contribution of one iteration (the non-``s``
    operand), ``guard`` the optional dominating condition (``None`` for
    an unguarded body).  The runtime executes the loop as per-chunk
    partial accumulators seeded with :data:`REDUCTION_IDENTITY` and
    folds the partials in ascending chunk order seeded with the
    incoming scalar — deterministic for a fixed trip count, and exact
    (bit-identical to serial) whenever ⊕ is exact on the data
    (``min``/``max`` always; float ``+``/``*`` on integer-valued data).
    """

    scalar: str
    op: str  # "+" | "*" | "min" | "max"
    update: Expr
    guard: Expr | None

    @property
    def identity(self) -> float:
        return REDUCTION_IDENTITY[self.op]


def _reads_scalar(e: Expr, name: str) -> bool:
    return any(
        isinstance(sub, Var) and sub.name == name for sub in walk_exprs(e)
    )


def recognize_reduction(loop: Loop) -> Reduction | None:
    """Match ``loop`` against the reduction idiom, or return ``None``.

    The body must be exactly one assignment — optionally wrapped in one
    ``If`` with an empty else branch whose condition does not read the
    accumulator — of the form ``s := s ⊕ e`` or ``s := e ⊕ s`` with
    ``⊕`` in ``+ * min max`` and ``e`` free of ``s``.  Anything else
    (a second statement reading ``s``, a non-commutative operator, a
    guard on ``s``) is not a reduction the ordered combine can honor,
    and the loop keeps its serial verdict.
    """
    stmts = list(loop.body.stmts)
    guard: Expr | None = None
    if len(stmts) == 1 and isinstance(stmts[0], If):
        cond = stmts[0]
        if len(cond.orelse) != 0:
            return None
        guard = cond.cond
        stmts = list(cond.then.stmts)
    if len(stmts) != 1 or not isinstance(stmts[0], Assign):
        return None
    assign = stmts[0]
    if not isinstance(assign.target, Var):
        return None
    name = assign.target.name
    if name == loop.var:
        return None
    value = assign.value
    if not isinstance(value, BinOp) or value.op not in REDUCTION_IDENTITY:
        return None
    lhs_is_s = isinstance(value.lhs, Var) and value.lhs.name == name
    rhs_is_s = isinstance(value.rhs, Var) and value.rhs.name == name
    if lhs_is_s == rhs_is_s:  # neither side, or s ⊕ s
        return None
    update = value.rhs if lhs_is_s else value.lhs
    if _reads_scalar(update, name):
        return None
    if guard is not None and _reads_scalar(guard, name):
        return None
    # The loop's step must be the unit constant the runtime strip-mines.
    if not (isinstance(loop.step, Const) and loop.step.value == 1):
        return None
    return Reduction(scalar=name, op=value.op, update=update, guard=guard)
