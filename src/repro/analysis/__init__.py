"""Dependence analysis: the substrate that justifies DOALL tags.

The paper assumes a restructuring compiler (Parafrase) has already classified
loops as parallel.  This package supplies that classification for this
library: affine subscript extraction, the classic ZIV/SIV/GCD/Banerjee
dependence tests with direction vectors, scalar privatization analysis, a
DOALL classifier/auto-tagger, and the chunk-safety verifier that proves
each mp dispatch race-free (:mod:`repro.analysis.safety`).
"""

from repro.analysis.subscripts import AffineForm, affine_of
from repro.analysis.space import IterationSpace
from repro.analysis.dependence import (
    Dependence,
    DependenceTester,
    direction_vectors,
    has_dependence,
)
from repro.analysis.doall import (
    AccessInfo,
    classify_loop,
    interchange_legal,
    loop_carried_dependences,
    mark_doall,
)
from repro.analysis.pdg import (
    PDG,
    PDGEdge,
    Reduction,
    build_pdg,
    recognize_reduction,
)
from repro.analysis.recovery import RecoveredNest, recognize_recovered_nest
from repro.analysis.safety import (
    LoopSafety,
    SafetyFinding,
    SafetyReport,
    verify_procedure,
)
from repro.analysis.summary import (
    LoopVerdict,
    NestPlan,
    ProcedureSummary,
    analyze_procedure,
)

__all__ = [
    "AccessInfo",
    "AffineForm",
    "Dependence",
    "DependenceTester",
    "IterationSpace",
    "LoopSafety",
    "LoopVerdict",
    "NestPlan",
    "PDG",
    "PDGEdge",
    "ProcedureSummary",
    "RecoveredNest",
    "Reduction",
    "SafetyFinding",
    "SafetyReport",
    "affine_of",
    "analyze_procedure",
    "build_pdg",
    "classify_loop",
    "direction_vectors",
    "has_dependence",
    "interchange_legal",
    "loop_carried_dependences",
    "mark_doall",
    "recognize_recovered_nest",
    "recognize_reduction",
    "verify_procedure",
]
