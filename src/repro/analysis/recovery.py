"""Recognizing index-recovery prefixes: de-coalescing by reconstruction.

A coalesced loop's body starts with assignments that recover the original
nest indices from the flat index (:func:`repro.transforms.coalesce.coalesce`
with ``materialize="assign"``, and the triangular variants).  Two consumers
need to *prove* that such a prefix really is recovery — not arbitrary scalar
code that happens to look like it:

* the C chunk emitter (:mod:`repro.codegen.cgen`) strength-reduces a
  verified prefix into one block-entry recovery plus odometer increments;
* the chunk-safety verifier (:mod:`repro.analysis.safety`) *de-coalesces*
  a dispatched flat loop back into its virtual nest so dependence testing
  runs over affine subscripts of the original indices instead of the
  non-affine div/mod recovery forms.

The proof technique is reconstruction: extract the candidate wrap bounds,
regenerate what :func:`repro.transforms.coalesce.recovery_expressions`
(or the exact-triangular closed form) would emit for those bounds, and
demand structural equality with the actual assignments.  A match is exact
— the recovered indices provably enumerate the virtual nest in
lexicographic order, one tuple per flat iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import ArrayRef, BinOp, Call, Const, Expr, Var, floor_div, mul, sub
from repro.ir.simplify import simplify
from repro.ir.stmt import Assign, Loop, Stmt
from repro.ir.visitor import free_vars, walk_exprs, walk_stmts

__all__ = [
    "RecoveredNest",
    "candidate_wrap_bound",
    "recognize_recovered_nest",
    "recovery_prefix",
    "verified_rectangular_recovery",
    "verified_triangular_recovery",
]


def recovery_prefix(
    loop: Loop, params: set[str], chained: bool = False
) -> tuple[list[Assign], list[Stmt]]:
    """Split ``loop.body`` into (recovery assignments, remaining body).

    A statement belongs to the recovery prefix when it assigns a body-local
    scalar from an expression over nothing but the flat loop variable and
    parameter scalars (no array reads) — the shape
    :func:`repro.transforms.coalesce.coalesce` materializes.  With
    ``chained=True``, later prefix expressions may also reference earlier
    recovered indices (the exact-triangular j uses i).  Purely structural:
    callers must still *verify* the prefix before trusting it.
    """
    allowed = {loop.var} | params
    heads: list[Assign] = []
    stmts = list(loop.body.stmts)
    for s in stmts:
        if (
            isinstance(s, Assign)
            and isinstance(s.target, Var)
            and s.target.name not in allowed
            and not any(isinstance(e, ArrayRef) for e in walk_exprs(s.value))
            and free_vars(s.value) <= allowed
        ):
            heads.append(s)
            if chained:
                allowed = allowed | {s.target.name}
        else:
            break
    return heads, stmts[len(heads):]


def candidate_wrap_bound(expr: Expr) -> Expr | None:
    """The single plausible wrap bound N inside a recovery expression.

    Both recovery styles mention N exactly as ``x mod N`` (divmod) or as
    ``N * ((x) floordiv N)`` (ceiling).  Returns the unique candidate, or
    None when zero or several distinct candidates appear.
    """
    candidates: list[Expr] = []
    for sub_e in walk_exprs(expr):
        if isinstance(sub_e, BinOp) and sub_e.op == "mod":
            candidates.append(sub_e.rhs)
        elif isinstance(sub_e, BinOp) and sub_e.op == "*":
            for n, d in ((sub_e.lhs, sub_e.rhs), (sub_e.rhs, sub_e.lhs)):
                if isinstance(d, BinOp) and d.op == "floordiv" and d.rhs == n:
                    candidates.append(n)
    unique: list[Expr] = []
    for c in candidates:
        if not any(c == u for u in unique):
            unique.append(c)
    return unique[0] if len(unique) == 1 else None


def _mutated_scalars(rest: list[Stmt]) -> set[str]:
    return {
        s.target.name
        for r in rest
        for s in walk_stmts(r)
        if isinstance(s, Assign) and isinstance(s.target, Var)
    }


def verified_rectangular_recovery(
    loop: Loop, heads: list[Assign], rest: list[Stmt]
) -> tuple[tuple[str, ...], tuple[Expr, ...]] | None:
    """Prove ``heads`` is rectangular coalesce recovery; return its shape.

    Extracts the wrap bound of every non-outermost index, reconstructs what
    :func:`repro.transforms.coalesce.recovery_expressions` would generate
    for both styles over those bounds, and demands structural equality with
    the actual assignments.  A match is a proof: the recovered indices then
    advance odometer-fashion over consecutive flat iterations, so computing
    them once per contiguous block and incrementing is exact.  Returns
    ``(index_vars, bounds)`` or None.  ``bounds[0]`` is a ``Const(1)``
    placeholder — the outermost bound never appears in recovery
    expressions and cannot be reconstructed from them.
    """
    from repro.transforms.coalesce import recovery_expressions

    m = len(heads)
    if m == 0:
        return None
    index_vars = tuple(
        s.target.name for s in heads if isinstance(s.target, Var)
    )
    if len(index_vars) != m or len(set(index_vars)) != m:
        return None
    # The loop tail must not write the flat index or any recovered index.
    if _mutated_scalars(rest) & (set(index_vars) | {loop.var}):
        return None
    bounds: list[Expr] = [Const(1)]  # outermost bound never wraps: unused
    for s in heads[1:]:
        n = candidate_wrap_bound(s.value)
        if n is None:
            return None
        bounds.append(n)
    flat = Var(loop.var)
    for style in ("ceiling", "divmod"):
        try:
            expected = recovery_expressions(flat, bounds, style=style)
        except (ValueError, ZeroDivisionError):  # pragma: no cover
            continue
        if m > 1 and all(s.value == e for s, e in zip(heads, expected)):
            return index_vars, tuple(bounds)
    if m == 1 and heads[0].value == flat:
        # Depth-1 coalesce: the "recovery" is the identity.
        return index_vars, (Const(1),)
    return None


def verified_triangular_recovery(
    loop: Loop, heads: list[Assign], rest: list[Stmt]
) -> tuple[str, str] | None:
    """Prove ``heads`` is the exact-triangular recovery; return (i, j).

    Reconstructs the closed forms
    :func:`repro.transforms.triangular.coalesce_triangular_exact` emits ::

        i = (isqrt(8I - 7) + 1) div 2
        j = I - i(i - 1) div 2

    and demands structural equality.  The recovered pair then enumerates
    the lower triangle ``1 <= j <= i`` in lexicographic order.
    """
    if len(heads) != 2:
        return None
    i_head, j_head = heads
    if not (isinstance(i_head.target, Var) and isinstance(j_head.target, Var)):
        return None
    i_var, j_var = i_head.target.name, j_head.target.name
    if i_var == j_var:
        return None
    if _mutated_scalars(rest) & {i_var, j_var, loop.var}:
        return None
    flat_v = Var(loop.var)
    i_expr = simplify(
        floor_div(
            Call("isqrt", (sub(mul(Const(8), flat_v), Const(7)),)) + Const(1),
            Const(2),
        )
    )
    i_v = Var(i_var)
    j_expr = simplify(
        sub(flat_v, floor_div(mul(i_v, sub(i_v, Const(1))), Const(2)))
    )
    if i_head.value == i_expr and j_head.value == j_expr:
        return i_var, j_var
    return None


@dataclass(frozen=True)
class RecoveredNest:
    """The virtual nest a dispatched flat loop enumerates.

    ``index_vars`` are the recovered induction variables, outermost first;
    ``bounds`` the reconstructed upper-bound expressions (entry 0 is a
    placeholder for rectangular shapes); ``body`` the statements after the
    recovery prefix; ``shape`` one of ``"rectangular"``,
    ``"triangular-exact"``, or ``"direct"`` (no recovery: the loop itself
    is the single virtual level).  For triangular shapes the second index
    ranges over a subset of ``1..i`` — consumers over-approximating it to
    a full rectangle stay sound (more dependences assumed, never fewer).
    """

    index_vars: tuple[str, ...]
    bounds: tuple[Expr | None, ...]
    body: tuple[Stmt, ...]
    shape: str


def recognize_recovered_nest(loop: Loop, params: set[str]) -> RecoveredNest:
    """De-coalesce ``loop`` into the virtual nest it enumerates.

    Falls back to ``shape="direct"`` (the loop's own index as the single
    virtual level, full body) when no verified recovery prefix is found —
    always sound, since the loop *is* a depth-1 nest over itself.
    """
    heads, rest = recovery_prefix(loop, params)
    rect = verified_rectangular_recovery(loop, heads, rest)
    if rect is not None:
        index_vars, bounds = rect
        out_bounds: list[Expr | None] = [None, *bounds[1:]]
        return RecoveredNest(index_vars, tuple(out_bounds), tuple(rest), "rectangular")
    # The exact-triangular j-expression references the recovered i, so its
    # prefix only assembles with chaining enabled.
    heads, rest = recovery_prefix(loop, params, chained=True)
    tri = verified_triangular_recovery(loop, heads[:2], heads[2:] + rest)
    if tri is not None:
        return RecoveredNest(
            tri, (None, None), tuple(heads[2:] + rest), "triangular-exact"
        )
    return RecoveredNest(
        (loop.var,), (loop.upper,), tuple(loop.body.stmts), "direct"
    )
