"""Chunk-safety verification: proving an mp dispatch race-free.

The mp runtime dispatches a DOALL loop by handing disjoint claimed blocks
of its (usually coalesced, flat) iteration range to worker processes that
share the array segments.  Self-scheduling may split the range anywhere,
so the sound model is chunk size 1: the dispatch is race-free exactly
when no two *distinct iterations* of the dispatched loop conflict.  The
verifier proves that at the level the runtime executes, then lifts
itself back to the level the paper reasons at:

1. **De-coalescing** (:mod:`repro.analysis.recovery`): a dispatched flat
   loop is recognized — by reconstructing its index-recovery prefix — as
   enumerating a virtual rectangular or triangular nest in lexicographic
   order.  Dependence testing then runs over the *virtual* indices,
   where subscripts are affine, instead of over the non-affine div/mod
   recovery forms.  Distinct flat iterations are exactly distinct
   virtual index tuples, so a dependence carried by any virtual level
   (enclosing serial levels held ``=``) is a cross-chunk race.
2. A **Banerjee/GCD scan** (:mod:`repro.analysis.dependence`)
   enumerates the feasible direction vectors per array reference pair.
3. **Guard-aware refutation**: vectors that survive Banerjee are
   re-checked against an exact rational linear system — the subscript
   equalities, the ``=``-direction merges, the affine loop bounds, and
   the equality/disequality guards dominating each access.  An
   infeasible system refutes the vector; this is what proves the
   pivot-guarded Gauss–Jordan update (``if i != j``, ``k = j+1..``)
   race-free where the interval tests alone cannot.
4. A **scalar capture check**: every scalar the chunk kernel receives
   must be read-only or provably private per iteration (defined before
   any use on every path).

Failures become structured findings with stable rule codes (rendered by
:mod:`repro.lint`, enforced by the mp runtime under ``safety=enforce``):

========  ============================================================
RACE001   carried flow dependence (write, then read, across chunks)
RACE002   cross-chunk write overlap (two iterations write one element)
RACE003   carried anti dependence (read, then overwrite, across chunks)
PRIV002   unproven-private scalar (live into an iteration that writes it)
SPEC001   dynamically provable (informational: the runtime inspector of
          ``safety=speculate`` can decide this dispatch exactly)
FISS001   fission applied (informational, emitted by the transform layer)
FISS002   fission refused: one dependence SCC spans the body
RED001    recognized reduction: the carried accumulator dispatches as
          per-chunk partials with a deterministic ordered combine
========  ============================================================

Everything here is conservative in the safe direction: recognition
failures fall back to testing the flat loop directly, non-affine
subscripts assume dependence, and refutation only ever *removes* a
vector when the rational system is provably infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from repro.analysis.dependence import DependenceTester, LoopInfo
from repro.analysis.doall import upward_exposed_scalars
from repro.analysis.pdg import recognize_reduction
from repro.analysis.recovery import RecoveredNest, recognize_recovered_nest
from repro.analysis.subscripts import affine_of
from repro.ir.expr import ArrayRef, BinOp, Const, Expr, Unary, Var
from repro.ir.printer import expr_to_source
from repro.ir.stmt import Assign, Block, If, Loop, Procedure, Stmt

__all__ = [
    "GuardedAccess",
    "LoopSafety",
    "RULES",
    "SafetyFinding",
    "SafetyReport",
    "array_access_sets",
    "collect_guarded_accesses",
    "dispatchable",
    "inspector_eligible",
    "verify_procedure",
]

#: Stable rule codes and their one-line titles.
RULES: dict[str, str] = {
    "RACE001": "carried flow dependence",
    "RACE002": "cross-chunk write overlap",
    "RACE003": "carried anti dependence",
    "PRIV002": "unproven-private scalar",
    "SPEC001": "dynamically provable",
    "FISS001": "fission applied",
    "FISS002": "fission refused",
    "RED001": "recognized reduction",
}

_HINTS: dict[str, str] = {
    "RACE001": (
        "a later iteration reads what an earlier one wrote; run the loop "
        "serially, or restructure so each iteration owns the elements it "
        "touches"
    ),
    "RACE002": (
        "two iterations can write the same element; make the subscript "
        "injective over the loop index or privatize the array"
    ),
    "RACE003": (
        "an iteration overwrites what an earlier one still reads; run the "
        "loop serially or buffer the read values"
    ),
    "PRIV002": (
        "the scalar is live into an iteration that also writes it; assign "
        "it from loop-local values before every use, or drop it to serial"
    ),
    "SPEC001": (
        "no array is both written and read and every scalar is provably "
        "private, so a subscript-only runtime inspector decides this "
        "dispatch exactly; run with safety=speculate"
    ),
    "FISS001": (
        "the loop was split along its dependence SCCs; the clean pieces "
        "dispatch in parallel while the cyclic residue stays serial"
    ),
    "FISS002": (
        "every statement sits in one dependence cycle, so no sub-loop "
        "can be separated; break the cycle to expose parallelism"
    ),
    "RED001": (
        "the accumulator loop dispatches as per-chunk partials combined "
        "in a fixed ascending order — deterministic for a given trip "
        "count, bit-identical to serial when the operator is exact"
    ),
}


def dispatchable(loop: Loop) -> bool:
    """Would the mp runtime dispatch this loop to the worker fleet?

    Mirrors the runtime's criterion: a DOALL tag and a unit constant
    step (anything else is interpreted serially in the parent and needs
    no chunk-safety proof).
    """
    return (
        loop.is_doall
        and isinstance(loop.step, Const)
        and loop.step.value == 1
    )


# ---------------------------------------------------------------------------
# findings and reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SafetyFinding:
    """One structured diagnostic from the verifier."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    loop_var: str  # the dispatched loop's index variable
    message: str
    hint: str
    array: str | None = None
    scalar: str | None = None
    directions: tuple[str, ...] | None = None
    exact: bool = True  # False when assumed conservatively (non-affine)
    src_stmt: int | None = None  # PDG statement index of the source
    dst_stmt: int | None = None  # PDG statement index of the sink

    @property
    def title(self) -> str:
        return RULES.get(self.rule, self.rule)

    def edge(self) -> str | None:
        """The dependence edge behind this finding, human-readable."""
        if self.src_stmt is None or self.dst_stmt is None:
            return None
        span = (
            f" at directions ({', '.join(self.directions)})"
            if self.directions
            else ""
        )
        return f"S{self.src_stmt} -> S{self.dst_stmt}{span}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "title": self.title,
            "severity": self.severity,
            "loop": self.loop_var,
            "array": self.array,
            "scalar": self.scalar,
            "directions": list(self.directions) if self.directions else None,
            "exact": self.exact,
            "src_stmt": self.src_stmt,
            "dst_stmt": self.dst_stmt,
            "message": self.message,
            "hint": self.hint,
        }

    def format(self) -> str:
        return f"{self.severity}[{self.rule}] loop {self.loop_var}: {self.message}"


@dataclass(frozen=True)
class LoopSafety:
    """The verdict for one dispatchable loop."""

    loop_var: str
    shape: str  # recovered nest shape: rectangular/triangular-exact/direct
    index_vars: tuple[str, ...]
    proven: bool
    findings: tuple[SafetyFinding, ...]
    reduction: str | None = None  # recognized accumulator scalar, if any

    def to_dict(self) -> dict:
        return {
            "loop": self.loop_var,
            "shape": self.shape,
            "index_vars": list(self.index_vars),
            "proven": self.proven,
            "reduction": self.reduction,
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass
class SafetyReport:
    """Per-dispatch verdicts for one procedure.

    ``by_id`` maps ``id(loop)`` of each dispatchable loop *in the exact
    procedure object verified* to its verdict, so the runtime can gate a
    dispatch without re-walking the tree.  ``dynamic`` collects the
    runtime certificates (:class:`repro.parallel.speculate.SpecCertificate`)
    a ``safety=speculate`` run appends after inspecting or speculating a
    statically-unproven dispatch.
    """

    procedure: str
    loops: tuple[LoopSafety, ...]
    by_id: dict[int, LoopSafety] = field(default_factory=dict, repr=False)
    dynamic: list[object] = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return all(v.proven for v in self.loops)

    @property
    def findings(self) -> list[SafetyFinding]:
        return [f for v in self.loops for f in v.findings]

    def to_dict(self) -> dict:
        return {
            "procedure": self.procedure,
            "ok": self.ok,
            "loops": [v.to_dict() for v in self.loops],
        }

    def format(self) -> str:
        lines = [f"safety report for {self.procedure}:"]
        if not self.loops:
            lines.append("  (no dispatchable DOALL loops)")
        for v in self.loops:
            nest = ", ".join(v.index_vars)
            status = "proven race-free" if v.proven else "UNPROVEN"
            lines.append(
                f"  loop {v.loop_var} [{v.shape}: {nest}] - {status}"
            )
            for f in v.findings:
                lines.append(f"    {f.format()}")
                lines.append(f"      hint: {f.hint}")
        for cert in self.dynamic:
            lines.append(f"  {cert}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# guarded access collection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuardedAccess:
    """An array access, its inner loop chain, and its dominating guards.

    ``guards`` is the path condition: each entry is ``(cond, polarity)``
    for an enclosing ``If`` — polarity False for the else branch.
    """

    ref: ArrayRef
    is_write: bool
    inner_chain: tuple[Loop, ...]
    guards: tuple[tuple[Expr, bool], ...]


def collect_guarded_accesses(
    body: Block,
    chain: tuple[Loop, ...] = (),
    guards: tuple[tuple[Expr, bool], ...] = (),
) -> list[GuardedAccess]:
    """All array accesses in ``body`` with chains and path conditions."""
    out: list[GuardedAccess] = []

    def reads_of(e: Expr) -> None:
        stack = [e]
        while stack:
            cur = stack.pop()
            if isinstance(cur, ArrayRef):
                out.append(GuardedAccess(cur, False, chain, guards))
            stack.extend(cur.children())

    for s in body.stmts:
        if isinstance(s, Assign):
            if isinstance(s.target, ArrayRef):
                out.append(GuardedAccess(s.target, True, chain, guards))
                for idx in s.target.indices:
                    reads_of(idx)
            reads_of(s.value)
        elif isinstance(s, If):
            reads_of(s.cond)
            out.extend(
                collect_guarded_accesses(
                    s.then, chain, guards + ((s.cond, True),)
                )
            )
            out.extend(
                collect_guarded_accesses(
                    s.orelse, chain, guards + ((s.cond, False),)
                )
            )
        elif isinstance(s, Loop):
            for e in (s.lower, s.upper, s.step):
                reads_of(e)
            out.extend(collect_guarded_accesses(s.body, chain + (s,), guards))
    return out


# ---------------------------------------------------------------------------
# the virtual nest: levels the dependence test ranges over
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Level:
    """One loop level: tester info plus symbolic bounds for refutation."""

    var: str
    info: LoopInfo
    lower: Expr | None
    upper: Expr | None

    @staticmethod
    def of_loop(loop: Loop) -> "_Level":
        return _Level(loop.var, LoopInfo.of(loop), loop.lower, loop.upper)


def _virtual_levels(loop: Loop, nest: RecoveredNest) -> list[_Level]:
    """The levels a dispatched loop's flat index enumerates."""
    if nest.shape == "rectangular":
        bounds = list(nest.bounds)
        # The outermost wrap bound never appears in recovery expressions;
        # reconstruct it from the flat trip count when everything is
        # constant and divisible (else leave it unbounded - sound).
        if bounds[0] is None and isinstance(loop.upper, Const):
            inner = [b.value for b in bounds[1:] if isinstance(b, Const)]
            if len(inner) == len(bounds) - 1 and all(
                isinstance(v, int) and v > 0 for v in inner
            ):
                prod = 1
                for v in inner:
                    prod *= v
                total = loop.upper.value
                if isinstance(total, int) and total % prod == 0:
                    bounds[0] = Const(total // prod)
        out = []
        for var, bound in zip(nest.index_vars, bounds):
            hi = bound.value if isinstance(bound, Const) else None
            out.append(_Level(var, LoopInfo(var, 1, hi), Const(1), bound))
        return out
    if nest.shape == "triangular-exact":
        i_var, j_var = nest.index_vars
        return [
            _Level(i_var, LoopInfo(i_var, 1, None), Const(1), None),
            # The triangle itself: 1 <= j <= i, exact by construction.
            _Level(j_var, LoopInfo(j_var, 1, None), Const(1), Var(i_var)),
        ]
    # direct: the loop is its own single virtual level
    return [_Level.of_loop(loop)]


# ---------------------------------------------------------------------------
# exact rational refutation of a direction vector
# ---------------------------------------------------------------------------

#: A column of the linear system: ("s"|"t"|"g", variable name) - source
#: side, sink side, or shared (loop-invariant parameter).
_Col = tuple[str, str]


class _Eliminator:
    """Incremental Gaussian elimination over exact rationals.

    Rows are linear equalities ``Σ c_v·x_v = const`` kept in reduced row
    echelon form, so a query form reduces in one pass.  ``infeasible``
    flips when a contradictory row (0 = nonzero) is added.
    """

    def __init__(self) -> None:
        self.rows: dict[_Col, tuple[dict[_Col, Fraction], Fraction]] = {}
        self.infeasible = False

    def _reduce(
        self, form: dict[_Col, Fraction], const: Fraction
    ) -> tuple[dict[_Col, Fraction], Fraction]:
        form = dict(form)
        for col in sorted(form):
            coeff = form.get(col)
            if not coeff:
                continue
            pivot = self.rows.get(col)
            if pivot is None:
                continue
            p_form, p_const = pivot
            for v, c in p_form.items():
                form[v] = form.get(v, Fraction(0)) - coeff * c
            const -= coeff * p_const
            form.pop(col, None)
        return {v: c for v, c in form.items() if c}, const

    def add(self, form: dict[_Col, Fraction], const: Fraction) -> None:
        form, const = self._reduce(form, const)
        if not form:
            if const != 0:
                self.infeasible = True
            return
        pivot_col = sorted(form)[0]
        pivot_coeff = form.pop(pivot_col)
        new_form = {v: c / pivot_coeff for v, c in form.items()}
        new_const = const / pivot_coeff
        # Keep RREF: eliminate the new pivot from every existing row.
        for col, (r_form, r_const) in list(self.rows.items()):
            c = r_form.get(pivot_col)
            if not c:
                continue
            merged = dict(r_form)
            merged.pop(pivot_col)
            for v, cv in new_form.items():
                merged[v] = merged.get(v, Fraction(0)) - c * cv
            self.rows[col] = (
                {v: cv for v, cv in merged.items() if cv},
                r_const - c * new_const,
            )
        self.rows[pivot_col] = (new_form, new_const)

    def implied_constant(
        self, form: dict[_Col, Fraction], const: Fraction
    ) -> Fraction | None:
        """The constant the system forces ``form + const`` to, or None."""
        r_form, r_const = self._reduce(form, const)
        return r_const if not r_form else None


class _PairSystem:
    """Refutes one direction vector for one access pair, exactly.

    Builds the equality system implied by "both references touch the
    same element under these directions", then checks every strict
    constraint (disequality guards, strict directions, loop bounds) for
    a forced violation.  Only a *provable* contradiction refutes.
    """

    def __init__(
        self,
        common: Sequence[_Level],
        extra_src: Sequence[_Level],
        extra_sink: Sequence[_Level],
        shared_ok: set[str],
    ) -> None:
        self.common = list(common)
        self.extra_src = list(extra_src)
        self.extra_sink = list(extra_sink)
        self.common_vars = {lv.var for lv in common}
        self.src_vars = {lv.var for lv in extra_src}
        self.sink_vars = {lv.var for lv in extra_sink}
        self.shared_ok = shared_ok

    def _column(self, side: str, var: str) -> _Col | None:
        if var in self.common_vars:
            return (side, var)
        if side == "s":
            if var in self.src_vars:
                return ("s", var)
            if var in self.sink_vars:
                return None  # other side's private index: no valid column
        else:
            if var in self.sink_vars:
                return ("t", var)
            if var in self.src_vars:
                return None
        if var in self.shared_ok:
            return ("g", var)
        return None  # unknown / possibly mutated symbol: bail out

    def _linear(
        self, e: Expr, side: str
    ) -> tuple[dict[_Col, Fraction], Fraction] | None:
        """``e`` as an exact linear form over tagged columns, or None."""
        if isinstance(e, Const):
            if isinstance(e.value, int):
                return {}, Fraction(e.value)
            return None
        if isinstance(e, Var):
            col = self._column(side, e.name)
            if col is None:
                return None
            return {col: Fraction(1)}, Fraction(0)
        if isinstance(e, Unary) and e.op == "-":
            inner = self._linear(e.operand, side)
            if inner is None:
                return None
            form, const = inner
            return {v: -c for v, c in form.items()}, -const
        if isinstance(e, BinOp) and e.op in ("+", "-"):
            a = self._linear(e.lhs, side)
            b = self._linear(e.rhs, side)
            if a is None or b is None:
                return None
            sign = Fraction(1 if e.op == "+" else -1)
            form = dict(a[0])
            for v, c in b[0].items():
                form[v] = form.get(v, Fraction(0)) + sign * c
            return {v: c for v, c in form.items() if c}, a[1] + sign * b[1]
        if isinstance(e, BinOp) and e.op == "*":
            a = self._linear(e.lhs, side)
            b = self._linear(e.rhs, side)
            if a is None or b is None:
                return None
            if not a[0]:
                k = a[1]
                return {v: k * c for v, c in b[0].items()}, k * b[1]
            if not b[0]:
                k = b[1]
                return {v: k * c for v, c in a[0].items()}, k * a[1]
            return None
        return None

    @staticmethod
    def _difference(
        a: tuple[dict[_Col, Fraction], Fraction],
        b: tuple[dict[_Col, Fraction], Fraction],
    ) -> tuple[dict[_Col, Fraction], Fraction]:
        form = dict(a[0])
        for v, c in b[0].items():
            form[v] = form.get(v, Fraction(0)) - c
        return {v: c for v, c in form.items() if c}, a[1] - b[1]

    def _guard_form(
        self, cond: Expr, polarity: bool, side: str
    ) -> tuple[str, dict[_Col, Fraction], Fraction] | None:
        """Classify a guard as ("eq"|"ne", form, const) over one side."""
        if not isinstance(cond, BinOp) or cond.op not in ("==", "!="):
            return None
        a = self._linear(cond.lhs, side)
        b = self._linear(cond.rhs, side)
        if a is None or b is None:
            return None
        kind = cond.op == "=="
        if not polarity:
            kind = not kind
        form, const = self._difference(a, b)
        return ("eq" if kind else "ne", form, const)

    def refutes(
        self,
        src: GuardedAccess,
        sink: GuardedAccess,
        directions: Sequence[str],
    ) -> bool:
        elim = _Eliminator()

        # 1. subscript equalities, dimension by dimension
        for se, te in zip(src.ref.indices, sink.ref.indices):
            a = self._linear(se, "s")
            b = self._linear(te, "t")
            if a is None or b is None:
                continue  # non-linear dimension contributes no equation
            form, const = self._difference(a, b)
            elim.add(form, const)

        # 2. "=" direction merges
        for lv, d in zip(self.common, directions):
            if d == "=":
                elim.add(
                    {("s", lv.var): Fraction(1), ("t", lv.var): Fraction(-1)},
                    Fraction(0),
                )

        # 3. equality guards join the system; disequalities are checks
        checks_ne: list[tuple[dict[_Col, Fraction], Fraction]] = []
        for access, side in ((src, "s"), (sink, "t")):
            for cond, polarity in access.guards:
                classified = self._guard_form(cond, polarity, side)
                if classified is None:
                    continue
                kind, form, const = classified
                if kind == "eq":
                    elim.add(form, const)
                else:
                    checks_ne.append((form, const))

        if elim.infeasible:
            return True

        # 4a. disequality guards: forced to 0 => contradiction
        for form, const in checks_ne:
            if elim.implied_constant(form, const) == 0:
                return True

        # 4b. strict directions: "<" forces sink index - src index >= 1
        for lv, d in zip(self.common, directions):
            if d == "=":
                continue
            sign = Fraction(1 if d == "<" else -1)
            form = {
                ("t", lv.var): sign,
                ("s", lv.var): -sign,
            }
            c = elim.implied_constant(form, Fraction(0))
            if c is not None and c < 1:
                return True

        # 4c. affine loop bounds: lower <= index <= upper on each side
        sides_of: list[tuple[_Level, tuple[str, ...]]] = [
            (lv, ("s", "t")) for lv in self.common
        ]
        sides_of += [(lv, ("s",)) for lv in self.extra_src]
        sides_of += [(lv, ("t",)) for lv in self.extra_sink]
        for lv, sides in sides_of:
            for side in sides:
                col = self._column(side, lv.var)
                if col is None:  # pragma: no cover - levels always resolve
                    continue
                idx = ({col: Fraction(1)}, Fraction(0))
                for bound, flip in ((lv.lower, 1), (lv.upper, -1)):
                    if bound is None:
                        continue
                    be = self._linear(bound, side)
                    if be is None:
                        continue
                    # flip=1: index - lower >= 0; flip=-1: upper - index >= 0
                    if flip == 1:
                        form, const = self._difference(idx, be)
                    else:
                        form, const = self._difference(be, idx)
                    c = elim.implied_constant(form, const)
                    if c is not None and c < 0:
                        return True
        return False


# ---------------------------------------------------------------------------
# the scans
# ---------------------------------------------------------------------------


def _common_prefix(a: tuple[Loop, ...], b: tuple[Loop, ...]) -> int:
    k = 0
    while k < len(a) and k < len(b) and a[k] is b[k]:
        k += 1
    return k


def array_access_sets(stmts: Iterable[Stmt]) -> tuple[set[str], set[str]]:
    """``(written, read)`` array *names* touched anywhere in ``stmts``.

    Reads include subscript expressions, guard conditions, loop bounds
    and assignment right-hand sides — everything except the written
    reference itself.  Name-level (not element-level): this is the
    eligibility test for the runtime inspector, which is exact only when
    ``written & read`` is empty (then every value an iteration consumes
    is loop-invariant, so subscript-only inspection sees the same
    addresses any interleaving would produce).
    """
    written: set[str] = set()
    read: set[str] = set()

    def reads_of(e: Expr) -> None:
        stack = [e]
        while stack:
            cur = stack.pop()
            if isinstance(cur, ArrayRef):
                read.add(cur.name)
            stack.extend(cur.children())

    stack = list(stmts)
    while stack:
        s = stack.pop()
        if isinstance(s, Assign):
            if isinstance(s.target, ArrayRef):
                written.add(s.target.name)
                for idx in s.target.indices:
                    reads_of(idx)
            reads_of(s.value)
        elif isinstance(s, Block):
            stack.extend(s.stmts)
        elif isinstance(s, If):
            reads_of(s.cond)
            stack.extend((s.then, s.orelse))
        elif isinstance(s, Loop):
            for e in (s.lower, s.upper, s.step):
                reads_of(e)
            stack.append(s.body)
    return written, read


def inspector_eligible(loop: Loop) -> tuple[bool, str]:
    """Can the runtime inspector decide this dispatch exactly?

    ``(True, reason)`` when subscript-only inspection is sound: no array
    is both written and read in the dispatched body (so every consumed
    array value is unchanged by the loop) — write disjointness is then
    the whole safety question.  ``(False, reason)`` names the first
    obstruction.  Scalar privacy (PRIV002) is judged by the static
    verifier and checked by callers separately.
    """
    written, read = array_access_sets([loop.body])
    overlap = sorted(written & read)
    if overlap:
        return False, (
            "array(s) %s are both written and read: values flow between "
            "iterations, subscript-only inspection cannot decide this"
            % ", ".join(overlap)
        )
    return True, "no array is both written and read"


def _written_scalars(stmts: Iterable[Stmt]) -> set[str]:
    out: set[str] = set()
    stack = list(stmts)
    while stack:
        s = stack.pop()
        if isinstance(s, Assign) and isinstance(s.target, Var):
            out.add(s.target.name)
        elif isinstance(s, Block):
            stack.extend(s.stmts)
        elif isinstance(s, If):
            stack.extend((s.then, s.orelse))
        elif isinstance(s, Loop):
            stack.append(s.body)
    return out


def _ref_source(ref: ArrayRef) -> str:
    inner = ", ".join(expr_to_source(e) for e in ref.indices)
    return f"{ref.name}({inner})"


def _scan_races(
    loop: Loop,
    outer: Sequence[Loop],
    nest: RecoveredNest,
    levels: Sequence[_Level],
    shared_ok: set[str],
) -> list[SafetyFinding]:
    """Cross-chunk races among the virtual body's array accesses."""
    accesses = [
        (si, acc)
        for si, s in enumerate(nest.body)
        for acc in collect_guarded_accesses(Block((s,)))
    ]
    outer_levels = [_Level.of_loop(lp) for lp in outer]
    n_outer = len(outer_levels)
    n_virtual = len(levels)
    findings: list[SafetyFinding] = []
    seen: set[tuple] = set()

    for src_i, src in accesses:
        if not src.is_write:
            continue
        for sink_i, sink in accesses:
            if src.ref.name != sink.ref.name:
                continue
            k = _common_prefix(src.inner_chain, sink.inner_chain)
            shared = [_Level.of_loop(lp) for lp in src.inner_chain[:k]]
            common = outer_levels + list(levels) + shared
            extra_src = [_Level.of_loop(lp) for lp in src.inner_chain[k:]]
            extra_sink = [_Level.of_loop(lp) for lp in sink.inner_chain[k:]]
            tester = DependenceTester(
                [lv.info for lv in common],
                [lv.info for lv in extra_src],
                [lv.info for lv in extra_sink],
            )
            system = _PairSystem(common, extra_src, extra_sink, shared_ok)
            all_vars = [lv.var for lv in common + extra_src + extra_sink]
            exact = all(
                affine_of(e, all_vars) is not None
                for e in (*src.ref.indices, *sink.ref.indices)
            )
            for directions in tester.feasible_directions(src.ref, sink.ref):
                if any(d != "=" for d in directions[:n_outer]):
                    continue  # different serial-outer iteration
                vspan = directions[n_outer : n_outer + n_virtual]
                if all(d == "=" for d in vspan):
                    continue  # same flat iteration: serial inside the chunk
                if system.refutes(src, sink, directions):
                    continue
                first = next(d for d in vspan if d != "=")
                if sink.is_write:
                    rule = "RACE002"
                elif first == "<":
                    rule = "RACE001"
                else:
                    rule = "RACE003"
                key = (rule, src.ref, sink.ref, directions, src_i, sink_i)
                if key in seen:
                    continue
                seen.add(key)
                sink_what = "write" if sink.is_write else "read"
                qualifier = "" if exact else " (assumed: non-affine subscript)"
                message = (
                    f"{RULES[rule]} on {src.ref.name}: write "
                    f"{_ref_source(src.ref)} vs {sink_what} "
                    f"{_ref_source(sink.ref)} at directions "
                    f"({', '.join(directions)}){qualifier}"
                )
                findings.append(
                    SafetyFinding(
                        rule=rule,
                        severity="error",
                        loop_var=loop.var,
                        message=message,
                        hint=_HINTS[rule],
                        array=src.ref.name,
                        directions=directions,
                        exact=exact,
                        src_stmt=src_i,
                        dst_stmt=sink_i,
                    )
                )
    return findings


def _scan_scalars(
    loop: Loop,
    outer: Sequence[Loop],
    nest: RecoveredNest,
) -> list[SafetyFinding]:
    """Scalars the chunk kernel receives that are not provably private."""
    body = Block(nest.body)
    exposed, _ = upward_exposed_scalars(body)
    written = _written_scalars(body.stmts)
    bound = set(nest.index_vars) | {loop.var} | {lp.var for lp in outer}
    findings: list[SafetyFinding] = []
    for name in sorted((exposed & written) - bound):
        src_stmt = next(
            (
                si
                for si, s in enumerate(nest.body)
                if name in _written_scalars([s])
            ),
            None,
        )
        dst_stmt = next(
            (
                si
                for si, s in enumerate(nest.body)
                if name in upward_exposed_scalars(Block((s,)))[0]
            ),
            None,
        )
        findings.append(
            SafetyFinding(
                rule="PRIV002",
                severity="error",
                loop_var=loop.var,
                message=(
                    f"scalar '{name}' is read before it is written in an "
                    "iteration that also writes it: not provably private "
                    "per chunk iteration"
                ),
                hint=_HINTS["PRIV002"],
                scalar=name,
                src_stmt=src_stmt,
                dst_stmt=dst_stmt,
            )
        )
    return findings


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _verify_dispatch(
    loop: Loop, outer: tuple[Loop, ...], proc: Procedure
) -> LoopSafety:
    params = set(proc.scalars) | {lp.var for lp in outer}
    nest = recognize_recovered_nest(loop, params)
    levels = _virtual_levels(loop, nest)
    # Shared symbolic columns are only sound for symbols that provably
    # hold one value on both sides of a dependence: never-written
    # procedure parameters.
    shared_ok = set(proc.scalars) - _written_scalars(proc.body.stmts)
    findings = _scan_races(loop, outer, nest, levels, shared_ok)
    findings += _scan_scalars(loop, outer, nest)
    # Recognized reductions: the accumulator is genuinely carried
    # (PRIV002 is *correct*), but the runtime executes the loop as
    # per-chunk partials with an ordered combine, so the dispatch is
    # sound.  Convert exactly that finding — and nothing else — into an
    # informational RED001 verdict.
    reduction_scalar: str | None = None
    red = recognize_reduction(loop)
    if red is not None:
        errors = [f for f in findings if f.severity == "error"]
        if errors and all(
            f.rule == "PRIV002" and f.scalar == red.scalar for f in errors
        ):
            findings = [f for f in findings if f not in errors]
            findings.append(
                SafetyFinding(
                    rule="RED001",
                    severity="info",
                    loop_var=loop.var,
                    message=(
                        f"recognized reduction: '{red.scalar}' accumulates "
                        f"with '{red.op}'; the runtime dispatches per-chunk "
                        "partials and combines them in a fixed order"
                    ),
                    hint=_HINTS["RED001"],
                    scalar=red.scalar,
                    src_stmt=0,
                    dst_stmt=0,
                )
            )
            reduction_scalar = red.scalar
    if any(f.severity == "error" for f in findings) and not any(
        f.rule == "PRIV002" for f in findings
    ):
        eligible, reason = inspector_eligible(loop)
        if eligible:
            findings.append(
                SafetyFinding(
                    rule="SPEC001",
                    severity="info",
                    loop_var=loop.var,
                    message=(
                        "statically unproven, but dynamically provable: "
                        f"{reason}, so safety=speculate can certify this "
                        "dispatch at runtime"
                    ),
                    hint=_HINTS["SPEC001"],
                )
            )
    return LoopSafety(
        loop_var=loop.var,
        shape=nest.shape,
        index_vars=nest.index_vars,
        proven=not any(f.severity == "error" for f in findings),
        findings=tuple(findings),
        reduction=reduction_scalar,
    )


def verify_procedure(proc: Procedure) -> SafetyReport:
    """Verify every loop the mp runtime would dispatch from ``proc``.

    Walks the body the way the hybrid executor does: a dispatchable
    DOALL is dispatched whole (its body runs serially inside chunk
    iterations), anything else is executed in the parent with its inner
    dispatchable loops verified in context.
    """
    verdicts: list[LoopSafety] = []
    by_id: dict[int, LoopSafety] = {}

    def go(s: Stmt, outer: tuple[Loop, ...]) -> None:
        if isinstance(s, Block):
            for x in s.stmts:
                go(x, outer)
        elif isinstance(s, If):
            go(s.then, outer)
            go(s.orelse, outer)
        elif isinstance(s, Loop):
            if dispatchable(s):
                verdict = _verify_dispatch(s, outer, proc)
                verdicts.append(verdict)
                by_id[id(s)] = verdict
            else:
                go(s.body, outer + (s,))

    go(proc.body, ())
    return SafetyReport(proc.name, tuple(verdicts), by_id)
