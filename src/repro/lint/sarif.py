"""SARIF 2.1.0 rendering of lint reports.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI platforms ingest for code-scanning annotations.  This module
maps :class:`repro.lint.engine.LintReport` findings onto one SARIF run:
each stable rule code becomes a ``reportingDescriptor``, each finding a
``result`` whose location names the linted input (the loop variable and
PDG statement indices ride in ``properties`` — the mini-language has no
line table after transformation, so statement indices are the stable
coordinates).

Severity maps onto SARIF levels: ``error`` → ``error``, ``warning`` →
``warning``, ``info`` → ``note``.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.safety import SafetyFinding
from repro.lint.engine import LintReport
from repro.lint.rules import RULE_DOCS

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif"]

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _rule_descriptor(code: str) -> dict:
    doc = RULE_DOCS[code]
    return {
        "id": doc.code,
        "name": doc.title.title().replace(" ", "").replace("-", ""),
        "shortDescription": {"text": doc.title},
        "fullDescription": {"text": doc.description},
        "defaultConfiguration": {"level": _LEVELS[doc.severity]},
        "help": {"text": doc.description},
    }


def _result(label: str, report: LintReport, finding: SafetyFinding) -> dict:
    properties: dict = {
        "procedure": report.procedure,
        "loop": finding.loop_var,
    }
    if finding.array is not None:
        properties["array"] = finding.array
    if finding.scalar is not None:
        properties["scalar"] = finding.scalar
    if finding.directions:
        properties["directions"] = list(finding.directions)
    if finding.src_stmt is not None:
        properties["src_stmt"] = finding.src_stmt
    if finding.dst_stmt is not None:
        properties["dst_stmt"] = finding.dst_stmt
    edge = finding.edge()
    if edge is not None:
        properties["edge"] = edge
    message = finding.message
    if finding.hint:
        message = f"{message}. Hint: {finding.hint}"
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "note"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": label},
                    # Statement indices are 0-based; SARIF regions are
                    # 1-based.  The region is nominal (the transformed
                    # program has no line table) but keeps viewers happy.
                    "region": {"startLine": (finding.src_stmt or 0) + 1},
                },
                "logicalLocations": [
                    {
                        "name": finding.loop_var,
                        "fullyQualifiedName": (
                            f"{report.procedure}::{finding.loop_var}"
                        ),
                        "kind": "member",
                    }
                ],
            }
        ],
        "properties": properties,
    }


def to_sarif(reports: Sequence[tuple[str, LintReport]]) -> dict:
    """Render ``(input label, report)`` pairs as one SARIF 2.1.0 log."""
    results = [
        _result(label, report, finding)
        for label, report in reports
        for finding in report.findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/loop-coalescing"
                        ),
                        "rules": [
                            _rule_descriptor(code)
                            for code in sorted(RULE_DOCS)
                        ],
                    }
                },
                "artifacts": [
                    {"location": {"uri": label}} for label, _ in reports
                ],
                "results": results,
                "properties": {
                    "schema": "repro.lint/v1",
                    "clean": all(not r.errors for _, r in reports),
                },
            }
        ],
    }
