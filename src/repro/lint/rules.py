"""The lint rule registry: stable codes, titles, and explanations.

Rule codes are part of the tool's public contract — CI greps for them,
tests assert on them, and the service returns them verbatim — so codes
are never renumbered or reused.  New rules append.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.safety import RULES

__all__ = ["RULE_DOCS", "RuleDoc", "explain"]


@dataclass(frozen=True)
class RuleDoc:
    """Documentation for one stable rule code."""

    code: str
    title: str
    severity: str
    description: str


RULE_DOCS: dict[str, RuleDoc] = {
    "RACE001": RuleDoc(
        "RACE001",
        RULES["RACE001"],
        "error",
        "An iteration of the dispatched loop writes an array element that "
        "a later iteration reads.  Under self-scheduling the two "
        "iterations may land in different chunks on different workers, so "
        "the reader can observe either the old or the new value.",
    ),
    "RACE002": RuleDoc(
        "RACE002",
        RULES["RACE002"],
        "error",
        "Two distinct iterations of the dispatched loop write the same "
        "array element.  Claimed blocks of the flat range are disjoint in "
        "*iterations*, not *elements*: when the write subscript is not "
        "injective over the loop index, chunks overlap in memory and the "
        "final value depends on worker timing.",
    ),
    "RACE003": RuleDoc(
        "RACE003",
        RULES["RACE003"],
        "error",
        "An iteration reads an array element that a later iteration "
        "overwrites.  Cross-chunk, the reader may see the overwritten "
        "value early.",
    ),
    "PRIV002": RuleDoc(
        "PRIV002",
        RULES["PRIV002"],
        "error",
        "A scalar received by the chunk kernel is read before it is "
        "written inside an iteration that also writes it.  Each worker "
        "holds its own copy, so a value carried between iterations "
        "(an accumulator, a running flag) diverges from serial "
        "execution.",
    ),
    "SPEC001": RuleDoc(
        "SPEC001",
        RULES["SPEC001"],
        "info",
        "The loop could not be proven race-free statically, but no array "
        "is both written and read and every scalar is provably private — "
        "so a subscript-only runtime inspector can decide each dispatch "
        "exactly.  Run with safety=speculate to dispatch it when the "
        "inspector proves the write sets disjoint (falling back to "
        "serial otherwise).",
    ),
    "FISS001": RuleDoc(
        "FISS001",
        RULES["FISS001"],
        "info",
        "Loop fission split this loop along the strongly connected "
        "components of its statement-level dependence graph.  Statements "
        "in a dependence cycle stay together in a serial sub-loop; "
        "acyclic components become their own loops, re-classified by the "
        "DOALL analyser and re-verified by the safety verifier before "
        "dispatch.  The message lists each piece (by original statement "
        "index) and its final kind.",
    ),
    "FISS002": RuleDoc(
        "FISS002",
        RULES["FISS002"],
        "info",
        "Loop fission was attempted but every top-level statement sits "
        "in one dependence cycle, so no sub-loop can be legally "
        "separated.  The message names the blocking SCC's statements and "
        "a representative dependence edge (source statement, sink "
        "statement, direction vector).  Break the cycle — buffer the "
        "values an earlier iteration still needs, or restructure the "
        "recurrence — to expose a parallel piece.",
    ),
    "RED001": RuleDoc(
        "RED001",
        RULES["RED001"],
        "info",
        "The loop matches the reduction idiom s := s ⊕ expr (⊕ one of "
        "+, *, min, max, optionally guarded).  The accumulator is "
        "genuinely carried — PRIV002 would be correct — but the runtime "
        "executes the loop with per-chunk partial accumulators seeded "
        "with the operator identity and folds them in ascending chunk "
        "order seeded with the incoming scalar.  The chunk grid depends "
        "only on the trip count, so the result is deterministic, and "
        "bit-identical to serial whenever ⊕ is exact on the data "
        "(min/max always; float +/* on integer-valued data).",
    ),
}


def explain(code: str) -> str:
    """Human-readable explanation of a rule code."""
    doc = RULE_DOCS.get(code)
    if doc is None:
        return f"{code}: unknown rule"
    return f"{doc.code} ({doc.severity}): {doc.title}\n\n{doc.description}"
