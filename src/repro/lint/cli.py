"""``python -m repro lint``: the chunk-safety linter CLI.

Usage::

    python -m repro lint FILE.loop [FILE2.loop ...]
    python -m repro lint --workload gauss_jordan
    python -m repro lint --workload racy_flow --safety enforce  # exit 1
    python -m repro lint FILE.loop --format json
    python -m repro lint --workload mixed_update --transforms \
        fission,reduction --sarif > findings.sarif

``--transforms`` runs the fission/reduction recovery passes before
verification, surfacing FISS001/FISS002/RED001 findings; ``--sarif``
(alias for ``--format sarif``) emits a SARIF 2.1.0 log for CI
code-scanning upload.

Exit codes: 0 clean (or ``--safety warn``), 1 findings under
``--safety enforce``, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.frontend.dsl import ParseError
from repro.ir.printer import to_source
from repro.ir.validate import ValidationError
from repro.lint.engine import LintReport, lint_source
from repro.lint.rules import explain


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static chunk-safety verification for mp dispatches",
    )
    parser.add_argument(
        "inputs",
        nargs="*",
        help="mini-language source files ('-' for stdin)",
    )
    parser.add_argument(
        "--workload",
        metavar="NAME",
        action="append",
        default=[],
        help="lint a registered workload (repeatable; racy counter-"
        "examples included)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="finding output format (sarif: SARIF 2.1.0 for CI upload)",
    )
    parser.add_argument(
        "--sarif",
        action="store_const",
        dest="format",
        const="sarif",
        help="shorthand for --format sarif",
    )
    parser.add_argument(
        "--transforms",
        metavar="NAMES",
        default=None,
        help="run the parallelism-recovery passes (fission,reduction) "
        "before verification and report their findings "
        "(FISS001/FISS002/RED001)",
    )
    parser.add_argument(
        "--safety",
        choices=("warn", "enforce"),
        default="enforce",
        help="enforce (default): exit nonzero when any dispatchable loop "
        "is unproven; warn: report findings but exit 0",
    )
    parser.add_argument(
        "--style", choices=("ceiling", "divmod"), default="ceiling"
    )
    parser.add_argument("--depth", type=int, default=None)
    parser.add_argument(
        "--triangular",
        action="store_true",
        help="also coalesce triangular nests before verification",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the compilation artifact cache",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print the documentation for a rule code and exit",
    )
    return parser


def _gather_sources(args: argparse.Namespace) -> list[tuple[str, str]]:
    """(label, source) pairs from files and --workload flags."""
    sources: list[tuple[str, str]] = []
    for path in args.inputs:
        if path == "-":
            sources.append(("<stdin>", sys.stdin.read()))
        else:
            with open(path) as fh:
                sources.append((path, fh.read()))
    if args.workload:
        from repro.workloads import get_workload

        for name in args.workload:
            sources.append((name, to_source(get_workload(name).proc)))
    return sources


def lint_main(argv: list[str] | None = None) -> int:
    args = build_lint_parser().parse_args(argv)
    if args.explain:
        print(explain(args.explain))
        return 0
    try:
        sources = _gather_sources(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not sources:
        print(
            "error: provide at least one input file or --workload",
            file=sys.stderr,
        )
        return 2

    reports: list[tuple[str, LintReport]] = []
    for label, source in sources:
        try:
            report = lint_source(
                source,
                style=args.style,
                depth=args.depth,
                triangular=args.triangular,
                transforms=args.transforms,
                cache=None if args.no_cache else "default",
            )
        except (ParseError, ValidationError, ValueError) as exc:
            print(f"error: {label}: {exc}", file=sys.stderr)
            return 2
        reports.append((label, report))

    if args.format == "sarif":
        from repro.lint.sarif import to_sarif

        print(json.dumps(to_sarif(reports), indent=2))
    elif args.format == "json":
        payload = [
            {"input": label, **report.to_dict()} for label, report in reports
        ]
        print(json.dumps(payload, indent=2))
    else:
        for label, report in reports:
            prefix = "" if label == report.procedure else f"{label}: "
            print(f"{prefix}{report.format()}")

    dirty = any(report.errors for _, report in reports)
    return 1 if dirty and args.safety == "enforce" else 0
