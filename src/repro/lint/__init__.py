"""`repro lint`: structured chunk-safety diagnostics.

A thin diagnostics layer over :mod:`repro.analysis.safety`: run the
compilation pipeline the way the mp backend would (claimed DOALL tags
honored, not re-derived), verify every loop the runtime would dispatch,
and render the findings — stable rule codes, severity, source loop,
direction vectors, fix hints — as text or JSON (schema
``repro.lint/v1``).  Exposed as ``python -m repro lint`` and served by
the compile server as ``POST /lint``.
"""

from repro.lint.engine import LINT_SCHEMA, LintReport, lint_procedure, lint_source
from repro.lint.rules import RULE_DOCS, explain
from repro.lint.sarif import SARIF_VERSION, to_sarif

__all__ = [
    "LINT_SCHEMA",
    "LintReport",
    "RULE_DOCS",
    "SARIF_VERSION",
    "explain",
    "lint_procedure",
    "lint_source",
    "to_sarif",
]
