"""The lint engine: pipeline + verifier + structured report.

Lint answers one question about a program: *if the mp backend ran this,
would every dispatch be race-free?*  To answer it faithfully the engine
compiles exactly the way the backend does — normalize, distribute,
coalesce — but with dependence re-analysis **off**, so the claimed DOALL
tags reach the verifier unlaundered (a ``mark_doall`` pass would demote
the very loops whose claims lint exists to audit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.safety import SafetyFinding, SafetyReport, verify_procedure
from repro.ir.printer import to_source
from repro.ir.stmt import Procedure

#: JSON schema tag on every serialized report.
LINT_SCHEMA = "repro.lint/v1"


@dataclass
class LintReport:
    """Verdicts and findings for one linted procedure."""

    procedure: str
    safety: SafetyReport
    transformed_source: str
    #: Informational findings from the opt-in transform passes
    #: (FISS001/FISS002/RED001), reported alongside the verifier's.
    transform_findings: list[SafetyFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.safety.ok

    @property
    def findings(self) -> list[SafetyFinding]:
        return list(self.transform_findings) + self.safety.findings

    @property
    def errors(self) -> list[SafetyFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def to_dict(self) -> dict:
        return {
            "schema": LINT_SCHEMA,
            "procedure": self.procedure,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "loops": [v.to_dict() for v in self.safety.loops],
        }

    @staticmethod
    def _finding_lines(f: SafetyFinding) -> list[str]:
        lines = [f"  {f.format()}"]
        edge = f.edge()
        if edge is not None:
            lines.append(f"    edge: {edge}")
        lines.append(f"    hint: {f.hint}")
        return lines

    def format(self) -> str:
        loops = self.safety.loops
        if self.ok:
            n = len(loops)
            what = (
                f"{n} dispatchable loop{'s' if n != 1 else ''} proven "
                "race-free"
                if n
                else "no dispatchable DOALL loops"
            )
            lines = [f"{self.procedure}: OK ({what})"]
            for f in self.findings:
                if f.severity != "error":
                    lines.extend(self._finding_lines(f))
            return "\n".join(lines)
        lines = [
            f"{self.procedure}: {len(self.errors)} problem(s) in "
            f"{sum(1 for v in loops if not v.proven)} of {len(loops)} "
            "dispatchable loop(s)"
        ]
        for f in self.transform_findings:
            lines.extend(self._finding_lines(f))
        for verdict in loops:
            for f in verdict.findings:
                lines.extend(self._finding_lines(f))
        return "\n".join(lines)


def lint_procedure(proc: Procedure) -> LintReport:
    """Lint an already-compiled procedure (as the backend would run it)."""
    report = verify_procedure(proc)
    return LintReport(proc.name, report, to_source(proc))


def lint_source(
    source: str,
    frontend: str = "dsl",
    style: str = "ceiling",
    depth: int | None = None,
    distribute: bool = True,
    triangular: bool = False,
    transforms: object = None,
    cache: object = "default",
) -> LintReport:
    """Compile ``source`` the way the mp backend would, then verify it.

    ``transforms`` opts into the fission/reduction recovery passes
    (exactly as ``--transforms`` does at run time); their informational
    findings (FISS001/FISS002/RED001) join the verifier's in the report.

    Raises the pipeline's own errors (``ParseError``,
    ``ValidationError``, ``ValueError``) on malformed input — callers
    render those as usage errors, not findings.
    """
    from repro.api import lower_and_coalesce

    _, proc, results, _ = lower_and_coalesce(
        source,
        frontend=frontend,
        style=style,
        depth=depth,
        distribute=distribute,
        analyze=False,  # lint the *claimed* tags, exactly as dispatched
        triangular=triangular,
        transforms=transforms,
        cache=cache,
    )
    report = lint_procedure(proc)
    # The verifier independently re-derives RED001 on re-tagged loops;
    # keep one copy per (rule, loop, scalar).
    seen = {(f.rule, f.loop_var, f.scalar) for f in report.findings}
    for r in results:
        if hasattr(r, "outcomes"):
            for f in r.findings:
                if (f.rule, f.loop_var, f.scalar) not in seen:
                    seen.add((f.rule, f.loop_var, f.scalar))
                    report.transform_findings.append(f)
    return report
