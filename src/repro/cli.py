"""Command-line driver: a miniature loop-coalescing compiler.

Usage::

    python -m repro INPUT.loop [options]
    python -m repro - < program.loop

Reads a procedure in the mini-language, runs a configurable pass pipeline,
and prints the transformed program (mini-language or generated Python).

Options:
    --passes LIST   comma-separated subset/order of:
                    normalize,analyze,distribute,coalesce
                    (default: normalize,analyze,distribute,coalesce)
    --style S       index-recovery style: ceiling (paper) or divmod
    --depth N       coalesce at most N levels per nest
    --emit FORM     loop (default) | python | both
    --report        print per-nest coalescing metadata to stderr
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.doall import mark_doall
from repro.codegen.pygen import generate_source
from repro.frontend.dsl import ParseError, parse
from repro.ir.printer import to_source
from repro.ir.validate import ValidationError, validate
from repro.transforms.coalesce import coalesce_procedure
from repro.transforms.distribute import distribute_procedure
from repro.transforms.normalize import normalize_procedure

DEFAULT_PASSES = "normalize,analyze,distribute,coalesce"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Loop coalescing compiler (ICPP'87 reproduction)",
    )
    parser.add_argument("input", help="mini-language source file, or '-' for stdin")
    parser.add_argument("--passes", default=DEFAULT_PASSES)
    parser.add_argument("--style", choices=("ceiling", "divmod"), default="ceiling")
    parser.add_argument("--depth", type=int, default=None)
    parser.add_argument("--emit", choices=("loop", "python", "both"), default="loop")
    parser.add_argument(
        "--triangular",
        action="store_true",
        help="also coalesce triangular (outer-dependent-bound) nests",
    )
    parser.add_argument("--report", action="store_true")
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="print the dependence-analysis report and coalescing plan "
        "instead of transforming",
    )
    return parser


def run_pipeline(
    source: str,
    passes: str = DEFAULT_PASSES,
    style: str = "ceiling",
    depth: int | None = None,
    triangular: bool = False,
):
    """Parse + transform; returns (procedure, coalesce results)."""
    proc = parse(source)
    validate(proc)
    results = []
    for name in [p.strip() for p in passes.split(",") if p.strip()]:
        if name == "normalize":
            proc = normalize_procedure(proc)
        elif name == "analyze":
            proc = mark_doall(proc)
        elif name == "distribute":
            proc = distribute_procedure(proc)
        elif name == "coalesce":
            proc, results = coalesce_procedure(
                proc, depth=depth, style=style, triangular=triangular
            )
        else:
            raise ValueError(f"unknown pass {name!r}")
        validate(proc)
    return proc, results


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.input == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.input) as fh:
                source = fh.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.analyze:
        from repro.analysis.summary import analyze_procedure

        try:
            proc = parse(source)
            validate(proc)
        except (ParseError, ValidationError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(analyze_procedure(proc).format())
        return 0

    try:
        proc, results = run_pipeline(
            source, args.passes, args.style, args.depth, args.triangular
        )
    except (ParseError, ValidationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.report:
        for r in results:
            if hasattr(r, "bounds"):  # rectangular CoalesceResult
                nest = " x ".join(to_source(b) for b in r.bounds)
                print(
                    f"coalesced nest ({', '.join(r.index_vars)}) "
                    f"depth={r.depth} bounds=[{nest}] flat={r.flat_var}",
                    file=sys.stderr,
                )
            else:  # TriangularResult
                print(
                    f"coalesced triangular nest ({', '.join(r.index_vars)}) "
                    f"strategy={r.strategy} total={to_source(r.total_iterations)} "
                    f"flat={r.flat_var}",
                    file=sys.stderr,
                )
        if not results:
            print("no nests coalesced", file=sys.stderr)

    if args.emit in ("loop", "both"):
        print(to_source(proc))
    if args.emit in ("python", "both"):
        if args.emit == "both":
            print()
        print(generate_source(proc), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
