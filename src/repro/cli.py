"""Command-line driver: a miniature loop-coalescing compiler.

Usage::

    python -m repro INPUT.loop [options]
    python -m repro - < program.loop

Reads a procedure in the mini-language, runs a configurable pass pipeline,
and prints the transformed program (mini-language or generated Python).

Options:
    --passes LIST   comma-separated subset/order of:
                    normalize,analyze,fission,reduction,distribute,coalesce
                    (default: normalize,analyze,distribute,coalesce)
    --transforms T  opt-in parallelism-recovery passes for the default
                    pipeline: fission (split mixed serial bodies along
                    their dependence SCCs) and/or reduction (dispatch
                    s := s + expr loops as ordered partial accumulators)
    --style S       index-recovery style: ceiling (paper) or divmod
    --depth N       coalesce at most N levels per nest
    --emit FORM     loop (default) | python | both
    --backend B     python (serial codegen) | mp (process-parallel runtime;
                    --emit python then shows the worker chunk function)
    --report        print per-nest coalescing metadata to stderr

Instead of an input file, ``--workload NAME`` compiles a registered
workload, and ``--run`` executes it with the chosen backend —
``--backend mp --workers 4 --policy gss`` runs the coalesced program on
real worker processes and prints the measured schedule (``--gantt``).

Compilation artifacts are cached on disk by content (``repro.cache``);
``--cache-dir DIR`` points the cache somewhere explicit and ``--no-cache``
bypasses it for one invocation.

``python -m repro serve`` starts the compile-and-run HTTP server
(:mod:`repro.service`) instead: ``POST /compile``, ``POST /run``,
``POST /lint``, ``GET /healthz``, ``GET /metrics``.

``python -m repro cluster --replicas N`` starts the N-replica deployment
(:mod:`repro.cluster`): a front-door router load-balancing those same
endpoints — plus the async job protocol ``POST /submit`` →
``GET /poll/<id>`` / ``GET /result/<id>`` / ``POST /cancel/<id>`` — over
replica server processes that share one artifact-cache directory.

``python -m repro loadtest`` hammers a server or cluster with a mixed
compile/run/lint/submit-poll workload (open- or closed-loop) and reports
p50/p99 latency and throughput (``--json`` for machine-readable output).

``python -m repro lint`` runs the chunk-safety verifier
(:mod:`repro.lint`) over source files or registered workloads and
reports structured findings (RACE001/RACE002/RACE003/PRIV002, plus
FISS001/FISS002/RED001 under ``--transforms``) as text, JSON, or
SARIF 2.1.0 (``--sarif``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.doall import mark_doall
from repro.codegen.pygen import generate_source
from repro.frontend.dsl import ParseError, parse
from repro.ir.printer import to_source
from repro.ir.validate import ValidationError, validate
from repro.transforms.coalesce import coalesce_procedure
from repro.transforms.distribute import distribute_procedure
from repro.transforms.normalize import normalize_procedure

DEFAULT_PASSES = "normalize,analyze,distribute,coalesce"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Loop coalescing compiler (ICPP'87 reproduction)",
    )
    parser.add_argument(
        "input",
        nargs="?",
        help="mini-language source file, or '-' for stdin "
        "(omit when using --workload)",
    )
    parser.add_argument("--passes", default=DEFAULT_PASSES)
    parser.add_argument(
        "--transforms",
        metavar="NAMES",
        default=None,
        help="comma-separated parallelism-recovery passes run between "
        "analysis and distribution: fission,reduction (default: none)",
    )
    parser.add_argument("--style", choices=("ceiling", "divmod"), default="ceiling")
    parser.add_argument("--depth", type=int, default=None)
    parser.add_argument("--emit", choices=("loop", "python", "both"), default="loop")
    parser.add_argument(
        "--backend",
        choices=("python", "mp"),
        default="python",
        help="execution/codegen backend: serial Python or the "
        "process-parallel runtime (repro.parallel)",
    )
    parser.add_argument(
        "--workload",
        metavar="NAME",
        help="compile a registered workload instead of an input file",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="execute the transformed program (requires --workload for the "
        "array environment) and report timing + a serial cross-check",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--policy",
        default="gss",
        help="mp scheduling policy: unit | fixed | gss | static "
        "(or any repro.scheduling.policies name)",
    )
    parser.add_argument("--chunk", type=int, default=None)
    parser.add_argument(
        "--reuse-pool",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="with --backend mp: serve every DOALL dispatch from one "
        "persistent worker pool (default) instead of spawning a fresh "
        "fleet per dispatch (--no-reuse-pool)",
    )
    parser.add_argument(
        "--claim-batch",
        type=lambda v: v if v == "auto" else int(v),
        default="auto",
        metavar="K",
        help="chunks handed out per fetch&add critical section for the "
        "unit/fixed policies (GSS always claims singly); the default "
        "'auto' sizes the batch from the calibrator's measured per-chunk "
        "service time",
    )
    parser.add_argument(
        "--chunk-lang",
        choices=("auto", "py", "c", "numpy"),
        default="auto",
        help="with --backend mp: language workers execute claimed blocks "
        "in — c (native ctypes kernel, the default when a C compiler is "
        "on PATH), numpy (whole-slice vectorized, the compiler-less "
        "default), or py (generated Python); faster paths fall back "
        "automatically",
    )
    parser.add_argument(
        "--variants",
        default=None,
        metavar="NAMES",
        help="with --backend mp: restrict the kernel variant farm to a "
        "comma-separated subset (e.g. gcc-O3,numpy; see "
        "repro.tuning.variants.VARIANTS)",
    )
    parser.add_argument(
        "--calibrate",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="with --backend mp --run: measure every available kernel "
        "variant of each chunk shape and dispatch the winner (the "
        "decision is pinned in the artifact cache); --no-calibrate "
        "disables all measurement",
    )
    parser.add_argument(
        "--safety",
        choices=("off", "warn", "enforce", "speculate"),
        default=None,
        help="chunk-safety mode for --backend mp --run: warn (default) "
        "verifies every dispatch and reports findings on stderr, enforce "
        "refuses unproven dispatches (they run serially; a fully-refused "
        "run is an error), speculate decides unproven dispatches at "
        "runtime (inspector proof or shadow-buffered speculation with "
        "commit/rollback), off skips verification",
    )
    parser.add_argument(
        "--gantt",
        action="store_true",
        help="with --run --backend mp: print the measured schedule",
    )
    parser.add_argument(
        "--triangular",
        action="store_true",
        help="also coalesce triangular (outer-dependent-bound) nests",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="root of the on-disk compilation artifact cache "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the compilation artifact cache entirely",
    )
    parser.add_argument("--report", action="store_true")
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="print the dependence-analysis report and coalescing plan "
        "instead of transforming",
    )
    return parser


def run_pipeline(
    source: str,
    passes: str = DEFAULT_PASSES,
    style: str = "ceiling",
    depth: int | None = None,
    triangular: bool = False,
    cache: object = "default",
    transforms: object = None,
):
    """Parse + transform; returns (procedure, coalesce results).

    The default pass order is served through the content-addressed
    artifact cache (``repro.cache``); custom pass subsets/orders always
    recompute.  ``transforms`` opts the default pipeline into the
    fission/reduction parallelism-recovery passes; in a custom
    ``--passes`` list, name them explicitly instead.
    """
    names = [p.strip() for p in passes.split(",") if p.strip()]
    if names == DEFAULT_PASSES.split(","):
        from repro.api import lower_and_coalesce

        _, proc, results, _ = lower_and_coalesce(
            source,
            frontend="dsl",
            style=style,
            depth=depth,
            triangular=triangular,
            transforms=transforms,
            cache=cache,
        )
        return proc, results
    if transforms:
        raise ValueError(
            "--transforms applies to the default pipeline only; with "
            "--passes, name fission/reduction in the pass list instead"
        )
    proc = parse(source)
    validate(proc)
    results: list = []
    for name in names:
        if name == "normalize":
            proc = normalize_procedure(proc)
        elif name == "analyze":
            proc = mark_doall(proc)
        elif name == "fission":
            from repro.transforms.fission import fission_procedure

            fres = fission_procedure(proc)
            proc = fres.procedure
            results.append(fres)
        elif name == "reduction":
            from repro.transforms.reduction import reduction_procedure

            rres = reduction_procedure(proc)
            proc = rres.procedure
            results.append(rres)
        elif name == "distribute":
            proc = distribute_procedure(proc)
        elif name == "coalesce":
            proc, cres = coalesce_procedure(
                proc, depth=depth, style=style, triangular=triangular
            )
            results = list(cres) + [
                r for r in results if hasattr(r, "outcomes")
            ]
        else:
            raise ValueError(f"unknown pass {name!r}")
        validate(proc)
    return proc, results


def _run_transformed(args, workload, proc) -> int:
    """Execute a transformed workload with the chosen backend (--run)."""
    import time

    import numpy as np

    from repro.codegen.pygen import compile_procedure
    from repro.workloads import make_env

    arrays, sc = make_env(workload)
    baseline = {k: v.copy() for k, v in arrays.items()}
    t0 = time.perf_counter()
    compile_procedure(workload.proc).run(baseline, sc)
    serial_t = time.perf_counter() - t0

    if args.backend == "mp":
        from repro.parallel import ParallelError, run_parallel_procedure

        try:
            result = run_parallel_procedure(
                proc,
                arrays,
                sc,
                workers=args.workers,
                policy=args.policy,
                chunk=args.chunk,
                reuse_pool=args.reuse_pool,
                claim_batch=args.claim_batch,
                chunk_lang=args.chunk_lang,
                safety=args.safety,
                variants=args.variants,
                calibrate=args.calibrate,
            )
        except (ParallelError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2 if isinstance(exc, ValueError) else 1
        if result.safety is not None and not result.safety.ok:
            for f in result.safety.findings:
                print(f"safety: {f.format()}", file=sys.stderr)
        elapsed = result.wall_time
        engine = "pool" if result.reused_pool else "spawn"
        blocked = (
            f", {result.blocked_dispatches} blocked"
            if result.blocked_dispatches
            else ""
        )
        if result.reductions:
            blocked += f", {result.reductions} reduction(s)"
        variant_names = result.variants
        variant_info = (
            f"variants {'+'.join(variant_names)}"
            if variant_names
            else f"{result.chunk_lang} chunks"
        )
        if result.calibrations or result.pinned_decisions:
            variant_info += (
                f" ({result.calibrations} calibrated, "
                f"{result.pinned_decisions} pinned)"
            )
        label = (
            f"mp[{args.policy}, {args.workers} workers, {engine}, "
            f"{variant_info}, "
            f"{len(result.dispatches)} dispatches{blocked}, "
            f"{result.claims} claims, {result.lock_ops} lock ops]"
        )
        if result.safety_mode == "speculate":
            print(
                f"speculate: inspected={result.inspected} "
                f"proven_dynamic={result.proven_dynamic} "
                f"speculated={result.speculated} "
                f"committed={result.committed} "
                f"rolled_back={result.rolled_back}"
            )
            for cert in result.certificates:
                print(f"speculate: {cert}")
        if args.gantt:
            for d in result.dispatches:
                print(f"-- measured schedule of DOALL {d.loop_var} (µs) --")
                print(d.gantt())
    else:
        t0 = time.perf_counter()
        compile_procedure(proc).run(arrays, sc)
        elapsed = time.perf_counter() - t0
        label = "python"

    match = all(np.array_equal(baseline[k], arrays[k]) for k in arrays)
    speedup = serial_t / elapsed if elapsed > 0 else float("inf")
    print(
        f"serial {serial_t:.4f}s | {label} {elapsed:.4f}s | "
        f"speedup {speedup:.2f}x | results match serial: {match}"
    )
    return 0 if match else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["serve"]:
        from repro.service.server import serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["cluster"]:
        from repro.cluster.router import cluster_main

        return cluster_main(argv[1:])
    if argv[:1] == ["loadtest"]:
        from repro.cluster.loadtest import loadtest_main

        return loadtest_main(argv[1:])
    if argv[:1] == ["lint"]:
        from repro.lint.cli import lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.no_cache or args.cache_dir:
        from repro.cache import configure

        configure(dir=args.cache_dir, enabled=not args.no_cache)
    workload = None
    if args.workload:
        if args.input:
            print(
                "error: give either an input file or --workload, not both",
                file=sys.stderr,
            )
            return 2
        from repro.workloads import get_workload

        try:
            workload = get_workload(args.workload)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        source = to_source(workload.proc)
    elif args.input is None:
        print("error: provide an input file or --workload", file=sys.stderr)
        return 2
    elif args.input == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.input) as fh:
                source = fh.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.run and workload is None:
        print(
            "error: --run needs --workload (it supplies the array "
            "environment)",
            file=sys.stderr,
        )
        return 2
    if args.analyze:
        from repro.analysis.summary import analyze_procedure

        try:
            proc = parse(source)
            validate(proc)
        except (ParseError, ValidationError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(analyze_procedure(proc).format())
        return 0

    try:
        proc, results = run_pipeline(
            source,
            args.passes,
            args.style,
            args.depth,
            args.triangular,
            transforms=args.transforms,
        )
    except (ParseError, ValidationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.report:
        for r in results:
            if hasattr(r, "outcomes"):  # FissionResult / ReductionResult
                print(r.summary(), file=sys.stderr)
                for f in r.findings:
                    print(f"  {f.format()}", file=sys.stderr)
                    edge = f.edge()
                    if edge is not None:
                        print(f"    edge: {edge}", file=sys.stderr)
            elif hasattr(r, "bounds"):  # rectangular CoalesceResult
                nest = " x ".join(to_source(b) for b in r.bounds)
                print(
                    f"coalesced nest ({', '.join(r.index_vars)}) "
                    f"depth={r.depth} bounds=[{nest}] flat={r.flat_var}",
                    file=sys.stderr,
                )
            else:  # TriangularResult
                print(
                    f"coalesced triangular nest ({', '.join(r.index_vars)}) "
                    f"strategy={r.strategy} total={to_source(r.total_iterations)} "
                    f"flat={r.flat_var}",
                    file=sys.stderr,
                )
        if not results:
            print("no nests coalesced", file=sys.stderr)

    if args.run:
        return _run_transformed(args, workload, proc)

    if args.emit in ("loop", "both"):
        print(to_source(proc))
    if args.emit in ("python", "both"):
        if args.emit == "both":
            print()
        if args.backend == "mp":
            from repro.parallel.backend import compile_mp_procedure

            print(compile_mp_procedure(proc).source, end="")
        else:
            print(generate_source(proc), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
