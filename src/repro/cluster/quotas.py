"""Per-tenant admission quotas for the cluster job queue.

A tenant is whatever string the client puts in its submit body (default
``"anon"``).  The quota bounds a tenant's *in-flight* jobs — queued plus
running — so one chatty client cannot occupy the whole queue; completed
jobs release their slot immediately, before the result is even polled.
"""

from __future__ import annotations

import threading

#: Default cap on in-flight (queued + running) jobs per tenant.
DEFAULT_TENANT_LIMIT = 64


class QuotaExceeded(Exception):
    """A tenant is at its in-flight limit (maps to HTTP 429)."""

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(
            f"tenant {tenant!r} is at its in-flight job limit ({limit})"
        )
        self.tenant = tenant
        self.limit = limit


class TenantQuotas:
    """Thread-safe in-flight accounting with per-tenant limits.

    ``default_limit`` applies to every tenant unless ``limits`` carries an
    override; a limit of 0 or less means "unlimited" for that tenant.
    """

    def __init__(
        self,
        default_limit: int = DEFAULT_TENANT_LIMIT,
        limits: dict[str, int] | None = None,
    ) -> None:
        self.default_limit = default_limit
        self.limits = dict(limits or {})
        self._inflight: dict[str, int] = {}
        self._lock = threading.Lock()

    def limit_for(self, tenant: str) -> int:
        return self.limits.get(tenant, self.default_limit)

    def acquire(self, tenant: str) -> None:
        """Claim one in-flight slot or raise :class:`QuotaExceeded`."""
        limit = self.limit_for(tenant)
        with self._lock:
            held = self._inflight.get(tenant, 0)
            if limit > 0 and held >= limit:
                raise QuotaExceeded(tenant, limit)
            self._inflight[tenant] = held + 1

    def release(self, tenant: str) -> None:
        with self._lock:
            held = self._inflight.get(tenant, 0)
            if held <= 1:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = held - 1

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight.get(tenant, 0)

    def snapshot(self) -> dict:
        """Live per-tenant gauges for the ``cluster.tenants`` metrics."""
        with self._lock:
            return {
                tenant: {
                    "inflight": held,
                    "limit": self.limit_for(tenant),
                }
                for tenant, held in sorted(self._inflight.items())
            }
