"""The cluster front door: load-balancing router + async job dispatch.

One :class:`ClusterRouter` accepts client traffic and feeds everything —
synchronous ``/compile``/``/run``/``/lint`` *and* async ``/submit`` jobs —
through one :class:`~repro.cluster.jobs.JobQueue`, so admission control
(bounded depth, per-tenant quotas → 429 + ``Retry-After``) and the
crash-retry budget apply uniformly.  Synchronous endpoints are just
"submit and wait": the response is the job's result, with a ``cluster``
block reporting which replica served it and whether it had to be retried.

Dispatcher threads claim jobs and forward them over pooled keep-alive
connections.  Runs route *sticky*: the replica that last compiled or ran
a program key gets that key's next run (warm kernel registrations, warm
pools — no recalibration), falling back to the least-loaded alive
replica when the sticky target is dead or unknown.  Replica crashes and
timeouts surface as transient transport errors; the dispatcher re-queues
the job (``jobs.retried``) until its retry budget runs out, nudges the
supervisor to restart the dead process, and stamps the final result with
``fallback_reason`` so clients can see the degradation.  Replica 4xx
responses are *client* errors: they fail the job immediately and relay
the replica's status code.

Binary (``repro.wire/v1``) run requests pass through *opaquely*: the
router peeks the frame header for the program key and tenant, then
forwards the original bytes verbatim — it never materializes an ndarray.
The replica's wire response is kept as a blob (``Job.result_raw``) and
streamed back out, with the ``cluster`` block spliced into the frame
header only.

Every replica registers compiled programs in its own memory, so a ``run``
landing on a replica that never saw the ``/compile`` (or was restarted
since) would 404.  The router remembers each key's compile request and
repairs on miss: re-issue the compile on that replica — a shared-cache
hit, so cheap — then retry the run.

Routes::

    POST /compile | /run | /lint      synchronous (queued + balanced)
    POST /submit                      {kind, body, tenant?} -> job_id
    GET  /poll/<job_id>               state + timings
    GET  /result/<job_id>             full result (409 until terminal)
    POST /cancel/<job_id>             cancel queued / best-effort running
    GET  /healthz                     router + fleet health
    GET  /metrics                     repro.metrics/v1 + jobs.* + cluster.*
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from http.server import ThreadingHTTPServer

from repro import wire
from repro.cluster.jobs import AdmissionError, Job, JobQueue
from repro.cluster.quotas import TenantQuotas
from repro.cluster.replica import ReplicaHandle, ReplicaSupervisor
from repro.parallel.observe import TransportCounters, metrics_snapshot
from repro.service.client import TRANSIENT_ERRORS, ServiceError
from repro.service.server import JsonRequestHandler, RequestError

#: Seconds a synchronous endpoint waits for its job before giving up (504).
DEFAULT_SYNC_TIMEOUT_S = 300.0

#: Job kinds the router accepts.
JOB_KINDS = ("compile", "run", "lint")

#: Bound on the sticky program-key -> replica map (LRU beyond this).
STICKY_CAPACITY = 1024


class ClusterRouter(ThreadingHTTPServer):
    """HTTP front door over a :class:`ReplicaSupervisor` fleet."""

    daemon_threads = True

    def __init__(
        self,
        supervisor: ReplicaSupervisor,
        address: tuple[str, int] = ("127.0.0.1", 0),
        queue: JobQueue | None = None,
        dispatchers: int | None = None,
        sync_timeout_s: float = DEFAULT_SYNC_TIMEOUT_S,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _RouterHandler)
        self.supervisor = supervisor
        self.queue = queue or JobQueue()
        self.sync_timeout_s = sync_timeout_s
        self.verbose = verbose
        #: key -> the /compile body that produced it (404-repair replays).
        self._compiles: dict[str, dict] = {}
        #: key -> replica index that last served it (sticky routing, LRU).
        self._sticky: OrderedDict[str, int] = OrderedDict()
        self.counters = {
            "requests": 0,
            "errors": 0,
            "routed_compile": 0,
            "routed_run": 0,
            "routed_lint": 0,
            "repairs": 0,
            "sticky_hits": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }
        #: Run requests by transport (json / wire / shm).
        self.transport = TransportCounters()
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._started = time.monotonic()
        self._stopping = threading.Event()
        self._paused = threading.Event()
        n_dispatchers = (
            dispatchers
            if dispatchers is not None
            else max(4, 2 * len(supervisor.handles))
        )
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{i}",
                daemon=True,
            )
            for i in range(n_dispatchers)
        ]
        for t in self._dispatchers:
            t.start()

    # -- bookkeeping shared with JsonRequestHandler ------------------------
    @property
    def port(self) -> int:
        return self.server_address[1]

    def bump(self, name: str, by: int = 1) -> None:
        with self._state_lock:
            self.counters[name] += by

    def bump_transport(self, transport: str) -> None:
        with self._state_lock:
            self.transport.bump(transport)

    def begin_request(self) -> None:
        with self._state_lock:
            self._inflight += 1

    def end_request(self) -> None:
        with self._state_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    def drain(self, deadline_s: float = 5.0) -> bool:
        t0 = time.monotonic()
        while self.inflight > 0 and time.monotonic() - t0 < deadline_s:
            time.sleep(0.02)
        return self.inflight == 0

    # -- maintenance hooks -------------------------------------------------
    def pause(self) -> None:
        """Stop claiming jobs (they queue); for maintenance and tests."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def close(self) -> None:
        """Stop dispatchers and the listener (the supervisor is stopped by
        its owner — typically :func:`start_cluster`'s caller)."""
        self._stopping.set()
        with self.queue._cond:  # wake blocked dispatchers
            self.queue._cond.notify_all()
        for t in self._dispatchers:
            t.join(timeout=5.0)
        self.server_close()

    # -- dispatch ----------------------------------------------------------
    def pick_replica(self, key: str | None = None) -> ReplicaHandle | None:
        """Routing policy: sticky by program key, else least-loaded.

        A key that was compiled or last run on a still-alive replica goes
        back there — its kernel registrations, chunk variants, and pools
        are warm, so the run skips recalibration entirely.  Unknown keys
        (and dead sticky targets) fall back to the least-loaded alive
        replica; the 404-repair path covers any stale registration.
        """
        alive = self.supervisor.alive_handles()
        if not alive:
            return None
        if key is not None:
            with self._state_lock:
                sticky_index = self._sticky.get(key)
                if sticky_index is not None:
                    self._sticky.move_to_end(key)
            if sticky_index is not None:
                for handle in alive:
                    if handle.index == sticky_index:
                        self.bump("sticky_hits")
                        return handle
        return min(alive, key=lambda h: (h.inflight, h.index))

    def _record_sticky(self, key: object, index: int) -> None:
        if not isinstance(key, str) or not key:
            return
        with self._state_lock:
            self._sticky[key] = index
            self._sticky.move_to_end(key)
            while len(self._sticky) > STICKY_CAPACITY:
                self._sticky.popitem(last=False)

    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            if self._paused.is_set():
                time.sleep(0.02)
                continue
            job = self.queue.next_job(timeout=0.2)
            if job is None:
                continue
            if self._paused.is_set():
                # Pause landed while we were blocked in next_job: put the
                # claim back untouched and wait it out.
                self.queue.unclaim(job)
                time.sleep(0.02)
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        sticky_key = job.body.get("key") if job.kind == "run" else None
        handle = self.pick_replica(sticky_key)
        waited = 0.0
        while handle is None and waited < 10.0 and not self._stopping.is_set():
            time.sleep(0.1)  # fleet mid-restart: give the supervisor a beat
            waited += 0.1
            handle = self.pick_replica(sticky_key)
        if handle is None:
            self.queue.requeue(job, "no replica alive")
            return
        generation = handle.generation
        job.replica = handle.index
        handle.begin()
        try:
            result = self._forward(handle, job)
        except ServiceError as exc:
            if exc.status >= 500:
                # The replica answered but is unwell — treat as transient.
                self.supervisor.report_failure(handle, generation)
                self.queue.requeue(
                    job, f"replica {handle.index} HTTP {exc.status}: {exc}"
                )
            else:
                self.queue.fail(job, str(exc), status=exc.status)
        except TRANSIENT_ERRORS as exc:
            # Crash, connection reset, or timeout: nudge a restart and
            # re-queue within the retry budget.
            self.supervisor.report_failure(handle, generation)
            self.queue.requeue(
                job,
                f"replica {handle.index} unreachable "
                f"({type(exc).__name__}: {exc})",
            )
        except Exception as exc:  # pragma: no cover - router bug guard
            self.queue.fail(job, f"router error: {exc}")
        else:
            if isinstance(result, (bytes, bytearray)):
                # Wire blob: _forward already spliced the cluster block
                # (fallback_reason included) into the frame header.
                self.queue.finish(job, result, content_type=wire.CONTENT_TYPE)
            else:
                if job.fallback_reason is not None:
                    result = dict(result)
                    cluster_block = dict(result.get("cluster") or {})
                    cluster_block["fallback_reason"] = job.fallback_reason
                    result["cluster"] = cluster_block
                self.queue.finish(job, result)
        finally:
            handle.end()

    def _forward(self, handle: ReplicaHandle, job: Job) -> dict | bytes:
        client = handle.client
        body = job.body
        if job.kind == "run" and job.raw_body is not None:
            return self._forward_wire(handle, job)
        if job.kind == "compile":
            result = client._request("POST", "/compile", body)
            key = result.get("key")
            if isinstance(key, str):
                with self._state_lock:
                    self._compiles[key] = body
                # The compiling replica has the program registered and its
                # kernels warm: send this key's runs there.
                self._record_sticky(key, handle.index)
            self.bump("routed_compile")
        elif job.kind == "run":
            try:
                result = client._request("POST", "/run", body)
            except ServiceError as exc:
                if exc.status != 404:
                    raise
                result = self._repair_and_rerun(client, body, exc)
            self._record_sticky(body.get("key"), handle.index)
            self.bump("routed_run")
        elif job.kind == "lint":
            result = client._request("POST", "/lint", body)
            self.bump("routed_lint")
        else:  # unreachable: submit validates kinds
            raise RequestError(400, f"unknown job kind {job.kind!r}")
        result["cluster"] = {
            "replica": handle.index,
            "attempts": job.attempts,
            "retries": job.retries,
        }
        return result

    def _forward_wire(self, handle: ReplicaHandle, job: Job) -> dict | bytes:
        """Forward a binary run verbatim (zero-copy pass-through).

        The frame bytes go out unchanged and the replica's response blob
        comes back unparsed; only the frame *header* is rewritten, to
        splice in the ``cluster`` block.  404-repair replays the
        remembered JSON compile body, then re-sends the same bytes.
        """
        client = handle.client
        headers = {
            "Content-Type": wire.CONTENT_TYPE,
            "Accept": wire.CONTENT_TYPE,
        }
        try:
            rheaders, raw = client._request_raw(
                "POST", "/run", job.raw_body, headers
            )
        except ServiceError as exc:
            if exc.status != 404:
                raise
            key = job.body.get("key")
            with self._state_lock:
                compile_body = self._compiles.get(key)
            if compile_body is None:
                raise
            client._request("POST", "/compile", compile_body)
            self.bump("repairs")
            rheaders, raw = client._request_raw(
                "POST", "/run", job.raw_body, headers
            )
        self._record_sticky(job.body.get("key"), handle.index)
        self.bump("routed_run")
        cluster_block = {
            "replica": handle.index,
            "attempts": job.attempts,
            "retries": job.retries,
        }
        if job.fallback_reason is not None:
            cluster_block["fallback_reason"] = job.fallback_reason
        ctype = (rheaders.get("Content-Type") or "").split(";")[0].strip()
        if ctype == wire.CONTENT_TYPE:
            return wire.patch_frame_body(raw, {"cluster": cluster_block})
        result = json.loads(raw)  # replica chose JSON (no arrays to carry)
        result["cluster"] = cluster_block
        return result

    def _repair_and_rerun(self, client, body: dict, exc: ServiceError) -> dict:
        """Replica lost the program registration (fresh process after a
        restart): replay the remembered compile — a shared-cache hit —
        and retry the run once."""
        key = body.get("key")
        with self._state_lock:
            compile_body = self._compiles.get(key)
        if compile_body is None:
            raise exc
        client._request("POST", "/compile", compile_body)
        self.bump("repairs")
        return client._request("POST", "/run", body)

    # -- request handling --------------------------------------------------
    def submit_job(
        self, payload: dict, raw_body: bytes | None = None
    ) -> Job:
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise RequestError(
                400, f"kind must be one of {list(JOB_KINDS)} (got {kind!r})"
            )
        body = payload.get("body")
        if not isinstance(body, dict):
            raise RequestError(400, "body must be an object")
        tenant = payload.get("tenant", "anon")
        if not isinstance(tenant, str) or not tenant:
            raise RequestError(400, "tenant must be a non-empty string")
        try:
            return self.queue.submit(
                kind, body, tenant=tenant, raw_body=raw_body
            )
        except AdmissionError as exc:
            raise RequestError(
                429,
                f"rejected: {exc.reason}",
                headers={"Retry-After": str(int(round(exc.retry_after_s)))},
            ) from exc

    def run_sync_job(
        self,
        kind: str,
        body: dict,
        tenant: str = "anon",
        raw_body: bytes | None = None,
    ) -> Job:
        """Submit + wait, returning the settled job (``result`` for JSON
        responses, ``result_raw`` for wire blobs to stream verbatim)."""
        job = self.submit_job(
            {"kind": kind, "body": body, "tenant": tenant}, raw_body=raw_body
        )
        if not job.wait(self.sync_timeout_s):
            self.queue.cancel(job.id)
            raise RequestError(
                504,
                f"job {job.id} still {job.state} after "
                f"{self.sync_timeout_s}s",
            )
        if job.state == "done":
            return job
        if job.state == "cancelled":
            raise RequestError(409, f"job {job.id} was cancelled")
        status = job.error_status if job.error_status else 503
        message = job.error or "job failed"
        if job.fallback_reason:
            message += f" (fallback_reason: {job.fallback_reason})"
        raise RequestError(status, message)

    def run_sync(self, kind: str, body: dict, tenant: str = "anon") -> dict:
        """Submit + wait: the synchronous JSON endpoints' implementation."""
        return self.run_sync_job(kind, body, tenant=tenant).result

    def health(self) -> dict:
        fleet = self.supervisor.describe()
        with self._state_lock:
            counters = dict(self.counters)
            inflight = self._inflight
        return {
            "status": "ok" if fleet["alive"] > 0 else "degraded",
            "role": "router",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "host_token": wire.host_token(),
            "inflight": inflight,
            "queue_depth": self.queue.depth(),
            **counters,
            "fleet": {k: fleet[k] for k in ("replicas", "alive", "restarts")},
        }

    def cluster_stats(self) -> dict:
        fleet = self.supervisor.describe()
        fleet["dispatchers"] = len(self._dispatchers)
        fleet["paused"] = self._paused.is_set()
        fleet["tenants"] = self.queue.quotas.snapshot()
        with self._state_lock:
            fleet["transport"] = self.transport.as_dict()
            fleet["sticky_keys"] = len(self._sticky)
        return fleet

    def metrics(self) -> dict:
        cache = self.supervisor.cache_dir  # occupancy of the shared store
        return metrics_snapshot(
            cache=cache if cache else None,
            server=self.health(),
            jobs=self.queue.stats(),
            cluster=self.cluster_stats(),
        )


class _RouterHandler(JsonRequestHandler):
    """Routes front-door requests to the :class:`ClusterRouter`."""

    server_version = "repro-cluster"

    def _route(self, method: str) -> None:
        router: ClusterRouter = self.server  # type: ignore[assignment]
        path = self.path.rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            self._send(200, router.health())
            return
        if method == "GET" and path == "/metrics":
            self._send(200, router.metrics())
            return
        if method == "POST" and path in ("/compile", "/run", "/lint"):
            if path == "/run" and self._wire_request():
                self._sync_wire_run(router)
                return
            body = self._body()
            tenant = body.pop("tenant", "anon")
            if path == "/run":
                router.bump_transport(
                    "shm" if body.get("transport") == "shm" else "json"
                )
            self._send(200, router.run_sync(path[1:], body, tenant=tenant))
            return
        if method == "POST" and path == "/submit":
            if self._wire_request():
                self._submit_wire(router)
                return
            payload = self._body()
            job = router.submit_job(payload)
            if job.kind == "run":
                router.bump_transport(
                    "shm"
                    if job.body.get("transport") == "shm"
                    else "json"
                )
            self._send(202, job.describe())
            return
        parts = path.lstrip("/").split("/")
        if len(parts) == 2 and parts[0] in ("poll", "result", "cancel"):
            verb, job_id = parts
            router.queue.reap()
            job = router.queue.get(job_id)
            if verb == "cancel" and method == "POST":
                job = router.queue.cancel(job_id)
                if job is None:
                    raise RequestError(404, f"unknown job {job_id!r}")
                self._send(200, job.describe())
                return
            if job is None:
                raise RequestError(
                    404, f"unknown job {job_id!r} (expired or never existed)"
                )
            if verb == "poll" and method == "GET":
                self._send(200, job.describe())
                return
            if verb == "result" and method == "GET":
                if job.state not in ("done", "failed", "cancelled"):
                    raise RequestError(
                        409, f"job {job_id} is still {job.state}"
                    )
                if job.result_raw is not None:
                    self._stream_wire_result(job)
                    return
                self._send(200, job.describe(with_result=True))
                return
        raise RequestError(404, f"no route {method} {self.path}")

    # -- wire-transport routes ---------------------------------------------
    def _peek_frame(self, raw: bytes) -> dict:
        try:
            body, _, _ = wire.peek_header(raw)
        except wire.WireFormatError as exc:
            raise RequestError(400, f"bad wire frame: {exc}") from exc
        return body

    def _sync_wire_run(self, router: ClusterRouter) -> None:
        """Synchronous binary run: peek the header for routing metadata,
        forward the bytes opaquely, stream the result blob back."""
        raw = self._read_body()
        if not raw:
            raise RequestError(400, "empty request body (wire frame expected)")
        body = self._peek_frame(raw)
        tenant = body.pop("tenant", "anon")
        if not isinstance(tenant, str) or not tenant:
            raise RequestError(400, "tenant must be a non-empty string")
        router.bump_transport("wire")
        job = router.run_sync_job("run", body, tenant=tenant, raw_body=raw)
        if job.result_raw is not None:
            self._send_bytes(
                200,
                job.result_raw,
                job.result_content_type or wire.CONTENT_TYPE,
            )
        else:
            self._send(200, job.result)

    def _submit_wire(self, router: ClusterRouter) -> None:
        """Async binary submit.  The frame body is the submit envelope
        ``{kind: "run", tenant?, body: {...run body...}}``; the frame is
        rewrapped around the inner body and queued for opaque forwarding.
        """
        raw = self._read_body()
        if not raw:
            raise RequestError(400, "empty request body (wire frame expected)")
        envelope = self._peek_frame(raw)
        kind = envelope.get("kind")
        if kind != "run":
            raise RequestError(
                400,
                "wire submissions carry array payloads: only kind='run' "
                f"is accepted (got {kind!r}); submit {kind!r} jobs as JSON",
            )
        inner = envelope.get("body")
        if not isinstance(inner, dict):
            raise RequestError(400, "body must be an object")
        try:
            forward = wire.rewrap_frame(raw, inner)
        except wire.WireFormatError as exc:  # pragma: no cover - peeked ok
            raise RequestError(400, f"bad wire frame: {exc}") from exc
        router.bump_transport("wire")
        job = router.submit_job(
            {"kind": "run", "body": inner,
             "tenant": envelope.get("tenant", "anon")},
            raw_body=forward,
        )
        self._send(202, job.describe())

    def _stream_wire_result(self, job) -> None:
        """Stream a wire result blob; the job doc rides in the frame
        header (stats body nested under ``result``).  JSON-only clients
        get a 406 pointing at the wire Accept they need."""
        if not self._wants_wire(default=True):
            raise RequestError(
                406,
                f"job {job.id} result is wire-encoded; request it with "
                f"'Accept: {wire.CONTENT_TYPE}'",
            )
        doc = job.describe()
        try:
            stats_body, _, _ = wire.peek_header(job.result_raw)
        except wire.WireFormatError:  # pragma: no cover - replica-built
            stats_body = {}
        doc["result"] = stats_body
        self._send_bytes(
            200,
            wire.rewrap_frame(job.result_raw, doc),
            job.result_content_type or wire.CONTENT_TYPE,
        )


def start_cluster(
    replicas: int = 2,
    cache_dir: str | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_pools: int = 4,
    drain_s: float = 5.0,
    queue: JobQueue | None = None,
    max_depth: int | None = None,
    max_retries: int | None = None,
    tenant_limit: int | None = None,
    dispatchers: int | None = None,
    sync_timeout_s: float = DEFAULT_SYNC_TIMEOUT_S,
    request_timeout_s: float = 60.0,
    verbose: bool = False,
) -> tuple[ClusterRouter, ReplicaSupervisor, threading.Thread]:
    """Spawn the fleet, start the router on a daemon thread.

    Returns ``(router, supervisor, thread)``; ``router.port`` carries the
    bound front-door port.  Stop with::

        router.shutdown(); router.close(); supervisor.stop()
    """
    supervisor = ReplicaSupervisor(
        replicas=replicas,
        cache_dir=cache_dir,
        host=host,
        max_pools=max_pools,
        drain_s=drain_s,
        request_timeout_s=request_timeout_s,
    ).start()
    try:
        if queue is None:
            kwargs: dict = {}
            if max_depth is not None:
                kwargs["max_depth"] = max_depth
            if max_retries is not None:
                kwargs["max_retries"] = max_retries
            if tenant_limit is not None:
                kwargs["quotas"] = TenantQuotas(default_limit=tenant_limit)
            queue = JobQueue(**kwargs)
        router = ClusterRouter(
            supervisor,
            address=(host, port),
            queue=queue,
            dispatchers=dispatchers,
            sync_timeout_s=sync_timeout_s,
            verbose=verbose,
        )
    except BaseException:
        supervisor.stop()
        raise
    thread = threading.Thread(
        target=router.serve_forever, name="repro-cluster-router", daemon=True
    )
    thread.start()
    return router, supervisor, thread


def cluster_main(argv: list[str] | None = None) -> int:
    """``python -m repro cluster`` entry point."""
    import argparse
    import os
    import pathlib
    import sys

    from repro.service.server import install_shutdown_handlers

    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Start the N-replica repro cluster (router + fleet)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8923)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="shared artifact-cache directory every replica opens "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument("--max-pools", type=int, default=4)
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="admission control: queued jobs beyond this get 429",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="re-dispatch budget per job after replica crashes/timeouts",
    )
    parser.add_argument(
        "--tenant-limit",
        type=int,
        default=None,
        help="per-tenant in-flight job quota (429 beyond it)",
    )
    parser.add_argument("--dispatchers", type=int, default=None)
    parser.add_argument("--drain-s", type=float, default=5.0)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = os.environ.get(
            "REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro")
        )
    cache_dir = str(pathlib.Path(cache_dir).expanduser())

    supervisor = ReplicaSupervisor(
        replicas=args.replicas,
        cache_dir=cache_dir,
        host=args.host,
        max_pools=args.max_pools,
        drain_s=args.drain_s,
    ).start()
    queue_kwargs: dict = {}
    if args.max_depth is not None:
        queue_kwargs["max_depth"] = args.max_depth
    if args.max_retries is not None:
        queue_kwargs["max_retries"] = args.max_retries
    if args.tenant_limit is not None:
        queue_kwargs["quotas"] = TenantQuotas(default_limit=args.tenant_limit)
    router = ClusterRouter(
        supervisor,
        address=(args.host, args.port),
        queue=JobQueue(**queue_kwargs),
        dispatchers=args.dispatchers,
        verbose=args.verbose,
    )
    ports = [h.port for h in supervisor.handles]
    print(
        f"repro cluster: router on http://{args.host}:{router.port}, "
        f"{args.replicas} replicas on ports {ports} "
        f"(shared cache: {cache_dir})",
        file=sys.stderr,
    )
    install_shutdown_handlers(router)  # type: ignore[arg-type]
    router.serve_forever()
    drained = router.drain(args.drain_s)
    router.close()
    supervisor.stop()
    print(
        f"repro cluster: shut down "
        f"({'drained' if drained else 'drain deadline hit'})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(cluster_main())
