"""The async job queue behind the cluster front door.

``submit`` admits a job (or rejects it: bounded depth, per-tenant quota),
hands back a job ID, and wakes a dispatcher; the dispatcher claims it with
``next_job``, executes it against a replica, and settles it with
``finish``/``fail`` — or puts it back with ``requeue`` when the replica
died under it, burning one unit of the job's retry budget.  Completed,
failed, and cancelled jobs stay pollable until their TTL expires; ``reap``
(called opportunistically from submits and the router's monitor loop)
evicts them.

States::

    queued ──▶ running ──▶ done
       │          │  ╰───▶ failed        (error / retry budget exhausted)
       │          ╰──────▶ queued        (requeue after a replica crash)
       ╰───▶ cancelled                   (cancel while queued; running jobs
                                          honor cancel at settle time)

Every transition is lock-protected and counted in a
:class:`repro.parallel.observe.JobCounters` (the ``jobs`` metrics block).
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.quotas import QuotaExceeded, TenantQuotas
from repro.parallel.observe import JobCounters

#: Terminal job states (pollable until the TTL reaper evicts them).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Default seconds a settled job stays pollable.
DEFAULT_RESULT_TTL_S = 600.0

#: Default cap on queued-but-unclaimed jobs (admission control).
DEFAULT_MAX_DEPTH = 256

#: Default re-dispatch budget after replica crashes/timeouts.
DEFAULT_MAX_RETRIES = 2


class AdmissionError(Exception):
    """Submit rejected (queue saturated or tenant over quota) → HTTP 429.

    ``retry_after_s`` is the server's backoff hint (the ``Retry-After``
    response header).
    """

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


@dataclass
class Job:
    """One unit of work flowing through the queue."""

    id: str
    kind: str  # "compile" | "run" | "lint"
    body: dict
    tenant: str
    #: Opaque binary request to forward verbatim (wire-transport runs).
    #: ``body`` then holds only the peeked frame header — the router
    #: never materializes the array payload.
    raw_body: bytes | None = None
    state: str = "queued"
    submitted_at: float = 0.0  # time.time(), for clients
    started_at: float | None = None
    finished_at: float | None = None
    #: Dispatch attempts so far (1 on the first execution).
    attempts: int = 0
    max_retries: int = DEFAULT_MAX_RETRIES
    result: dict | None = None
    #: Opaque binary result to stream verbatim from ``/result`` (set
    #: instead of ``result`` for wire-transport runs).
    result_raw: bytes | None = None
    result_content_type: str | None = None
    error: str | None = None
    #: HTTP status to relay for client-caused failures (4xx from a replica).
    error_status: int | None = None
    #: Why the job needed degrading (last transient replica failure).
    fallback_reason: str | None = None
    #: Replica index of the current/most recent execution.
    replica: int | None = None
    cancel_requested: bool = False
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    _settled_mono: float | None = field(default=None, repr=False)

    @property
    def retries(self) -> int:
        """Re-dispatches that actually happened (attempts beyond the first)."""
        return max(0, self.attempts - 1)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles (done/failed/cancelled)."""
        return self._done.wait(timeout)

    def describe(self, with_result: bool = False) -> dict:
        doc = {
            "job_id": self.id,
            "kind": self.kind,
            "tenant": self.tenant,
            "state": self.state,
            "attempts": self.attempts,
            "retries": self.retries,
            "max_retries": self.max_retries,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "replica": self.replica,
            "error": self.error,
            "fallback_reason": self.fallback_reason,
        }
        if self.result_raw is not None:
            doc["result_encoding"] = "wire"
            doc["result_nbytes"] = len(self.result_raw)
        if with_result:
            doc["result"] = self.result
        return doc


class JobQueue:
    """Thread-safe bounded FIFO of jobs with quotas, TTLs, and retries."""

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_retries: int = DEFAULT_MAX_RETRIES,
        result_ttl_s: float = DEFAULT_RESULT_TTL_S,
        quotas: TenantQuotas | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.max_retries = max_retries
        self.result_ttl_s = result_ttl_s
        self.quotas = quotas or TenantQuotas()
        self.counters = JobCounters()
        self._jobs: dict[str, Job] = {}
        self._queued: deque[Job] = deque()
        self._cond = threading.Condition()
        #: EWMA of job service time, feeding the Retry-After hint.
        self._service_ewma_s = 0.05

    # -- admission ---------------------------------------------------------
    def retry_after_hint(self) -> float:
        """Seconds a rejected client should back off: the queue's current
        backlog times the measured per-job service time, clamped sane."""
        with self._cond:
            depth = len(self._queued)
        return min(30.0, max(1.0, depth * self._service_ewma_s))

    def submit(
        self,
        kind: str,
        body: dict,
        tenant: str = "anon",
        max_retries: int | None = None,
        raw_body: bytes | None = None,
    ) -> Job:
        """Admit a job or raise :class:`AdmissionError` (→ 429).

        ``raw_body`` attaches an opaque binary request (wire transport)
        that dispatchers forward verbatim; ``body`` then carries only the
        peeked frame header used for admission and routing decisions.
        """
        self.reap()
        hint = self.retry_after_hint()
        with self._cond:
            if self.max_depth > 0 and len(self._queued) >= self.max_depth:
                self.counters.rejected += 1
                raise AdmissionError(
                    f"queue saturated ({len(self._queued)} jobs deep, "
                    f"max_depth={self.max_depth})",
                    hint,
                )
            try:
                self.quotas.acquire(tenant)
            except QuotaExceeded as exc:
                self.counters.rejected += 1
                raise AdmissionError(str(exc), hint) from exc
            job = Job(
                id=f"j-{secrets.token_hex(8)}",
                kind=kind,
                body=body,
                tenant=tenant,
                raw_body=raw_body,
                submitted_at=time.time(),
                max_retries=(
                    self.max_retries if max_retries is None else max_retries
                ),
            )
            self._jobs[job.id] = job
            self._queued.append(job)
            self.counters.submitted += 1
            self._cond.notify()
        return job

    # -- dispatch ----------------------------------------------------------
    def next_job(self, timeout: float | None = None) -> Job | None:
        """Claim the oldest queued job (state → running); None on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._queued:
                    job = self._queued.popleft()
                    if job.state != "queued":  # cancelled while queued
                        continue
                    job.state = "running"
                    job.attempts += 1
                    if job.started_at is None:
                        job.started_at = time.time()
                    return job
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def unclaim(self, job: Job) -> None:
        """Return a claimed job to the queue untouched (no retry burned,
        no counters moved) — a dispatcher that noticed it is paused after
        winning the claim race puts the job back with this."""
        with self._cond:
            if job.state != "running":
                return
            job.attempts -= 1
            if job.attempts == 0:
                job.started_at = None
            job.state = "queued"
            self._queued.appendleft(job)
            self._cond.notify()

    def requeue(self, job: Job, reason: str) -> bool:
        """Put a running job back after a transient replica failure.

        Burns one retry; returns False (and fails the job) once the
        budget is exhausted or cancellation was requested meanwhile.
        """
        with self._cond:
            if job.cancel_requested:
                self._settle(job, "cancelled")
                self.counters.cancelled += 1
                return False
            job.fallback_reason = reason
            if job.retries >= job.max_retries:
                job.error = (
                    f"retry budget exhausted after {job.attempts} "
                    f"attempts: {reason}"
                )
                self._settle(job, "failed")
                self.counters.failed += 1
                return False
            job.state = "queued"
            self._queued.appendleft(job)  # retries jump the line
            self.counters.retried += 1
            self._cond.notify()
            return True

    def finish(
        self,
        job: Job,
        result: dict | bytes,
        content_type: str | None = None,
    ) -> None:
        """Settle a job as done.  ``result`` is either the decoded dict
        (JSON path) or the replica's verbatim binary response (wire
        path), in which case ``content_type`` labels the blob for the
        ``/result`` stream."""
        with self._cond:
            if job.cancel_requested:
                self._settle(job, "cancelled")
                self.counters.cancelled += 1
                return
            if isinstance(result, (bytes, bytearray)):
                job.result_raw = bytes(result)
                job.result_content_type = content_type
            else:
                job.result = result
            self._settle(job, "done")
            self.counters.completed += 1

    def fail(
        self, job: Job, error: str, status: int | None = None
    ) -> None:
        with self._cond:
            if job.cancel_requested:
                self._settle(job, "cancelled")
                self.counters.cancelled += 1
                return
            job.error = error
            job.error_status = status
            self._settle(job, "failed")
            self.counters.failed += 1

    def _settle(self, job: Job, state: str) -> None:
        """Terminal transition (caller holds the lock)."""
        was_settled = job.state in TERMINAL_STATES
        job.state = state
        job.finished_at = time.time()
        job._settled_mono = time.monotonic()
        if not was_settled:
            self.quotas.release(job.tenant)
            if job.started_at is not None:
                self._service_ewma_s = (
                    0.8 * self._service_ewma_s
                    + 0.2 * max(0.0, job.finished_at - job.started_at)
                )
        job._done.set()

    # -- client-facing lookups --------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job: immediate while queued, best-effort while running
        (the in-flight execution completes but its result is discarded)."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "queued":
                try:
                    # Drop the carcass so it stops occupying admission depth.
                    self._queued.remove(job)
                except ValueError:  # pragma: no cover - claim race
                    pass
                self._settle(job, "cancelled")
                self.counters.cancelled += 1
            elif job.state == "running":
                job.cancel_requested = True
            return job

    # -- gauges / maintenance ---------------------------------------------
    def depth(self) -> int:
        """Queued-but-unclaimed jobs (the admission gauge)."""
        with self._cond:
            return sum(1 for j in self._queued if j.state == "queued")

    def states(self) -> dict[str, int]:
        with self._cond:
            gauge: dict[str, int] = {}
            for job in self._jobs.values():
                gauge[job.state] = gauge.get(job.state, 0) + 1
            return gauge

    def reap(self) -> int:
        """Evict settled jobs older than the TTL; returns evictions."""
        if self.result_ttl_s is None:
            return 0
        now = time.monotonic()
        evicted = 0
        with self._cond:
            for job_id in [
                jid
                for jid, j in self._jobs.items()
                if j.state in TERMINAL_STATES
                and j._settled_mono is not None
                and now - j._settled_mono > self.result_ttl_s
            ]:
                del self._jobs[job_id]
                self.counters.expired += 1
                evicted += 1
        return evicted

    def stats(self) -> dict:
        """The ``jobs`` metrics block: monotonic counters + live gauges."""
        return {
            **self.counters.as_dict(),
            "depth": self.depth(),
            "states": self.states(),
            "service_ewma_s": round(self._service_ewma_s, 6),
        }
