"""Replica processes and the supervisor that keeps N of them alive.

Each replica is a full :class:`~repro.service.server.ReproServer` in its
own OS process (``spawn`` start method: a clean interpreter, no inherited
locks or threads), bound to an ephemeral port it reports back over a pipe.
Every replica opens the *same* artifact-cache directory — the store's
atomic-rename publication makes that safe — so compiles, native kernels,
farm manifests, and pinned ``repro.tuning/v1`` decisions published by one
replica are warm cache hits on all the others.

The supervisor's monitor thread restarts replicas that die (crash
injection in the tests SIGKILLs one mid-job and watches the router retry
the job elsewhere while a fresh process takes the dead one's slot).
Graceful stop sends SIGTERM — the replica's signal handler stops
accepting, drains in-flight requests with a deadline, and closes its
pools, unlinking every ``/dev/shm`` segment — then escalates to SIGKILL
only after the deadline.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.service.client import ServiceClient

#: How long to wait for a freshly spawned replica to report its port.
SPAWN_TIMEOUT_S = 60.0

#: Monitor poll interval (crash detection latency).
MONITOR_INTERVAL_S = 0.1


def _replica_main(
    host: str,
    conn,
    cache_dir: str | None,
    max_pools: int,
    drain_s: float,
) -> None:
    """Entry point of one replica process (module-level: spawn-picklable)."""
    from repro import wire
    from repro.cache import ArtifactCache
    from repro.service.server import ReproServer, install_shutdown_handlers

    cache = ArtifactCache(cache_dir) if cache_dir else None
    server = ReproServer((host, 0), cache=cache, max_pools=max_pools)
    install_shutdown_handlers(server)
    conn.send({"port": server.port, "host_token": wire.host_token()})
    conn.close()
    server.serve_forever()
    drained = server.drain(drain_s)
    server.close(force=not drained)


@dataclass
class ReplicaHandle:
    """One live (or restarting) replica slot as the router sees it."""

    index: int
    proc: multiprocessing.process.BaseProcess | None = None
    port: int | None = None
    client: ServiceClient | None = None
    #: ``wire.host_token()`` of the replica process — same-host shm
    #: handoffs are only offered when it matches the caller's token.
    host_token: str | None = None
    #: Bumped on every (re)start — stale failure reports from a previous
    #: incarnation must not trigger another restart.
    generation: int = 0
    #: Jobs currently executing against this replica (the queue-depth
    #: gauge ``cluster.per_replica[i].inflight``).
    inflight: int = 0
    started_at: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: Serializes respawns of this slot — the monitor thread and a router
    #: dispatcher may both notice the same death; only one may spawn.
    restart_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def begin(self) -> None:
        with self._lock:
            self.inflight += 1

    def end(self) -> None:
        with self._lock:
            self.inflight -= 1

    def describe(self) -> dict:
        return {
            "index": self.index,
            "port": self.port,
            "alive": self.alive,
            "pid": self.proc.pid if self.proc is not None else None,
            "generation": self.generation,
            "host_token": self.host_token,
            "inflight": self.inflight,
            "uptime_s": (
                round(time.monotonic() - self.started_at, 3)
                if self.alive
                else 0.0
            ),
        }


class ReplicaSupervisor:
    """Spawns, monitors, restarts, and stops a fleet of replica servers."""

    def __init__(
        self,
        replicas: int = 2,
        cache_dir: str | os.PathLike | None = None,
        host: str = "127.0.0.1",
        max_pools: int = 4,
        drain_s: float = 5.0,
        request_timeout_s: float = 60.0,
        auto_restart: bool = True,
    ) -> None:
        if replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.host = host
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.max_pools = max_pools
        self.drain_s = drain_s
        self.request_timeout_s = request_timeout_s
        self.auto_restart = auto_restart
        self.handles = [ReplicaHandle(index=i) for i in range(replicas)]
        self.restarts = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ReplicaSupervisor":
        for handle in self.handles:
            self._spawn(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor",
            daemon=True,
        )
        self._monitor.start()
        return self

    def _spawn(self, handle: ReplicaHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_replica_main,
            args=(
                self.host,
                child_conn,
                self.cache_dir,
                self.max_pools,
                self.drain_s,
            ),
            name=f"repro-replica-{handle.index}",
            # Not a daemon: replicas fork their own worker-pool processes,
            # which daemonic processes are forbidden to do.
            daemon=False,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(SPAWN_TIMEOUT_S):
            proc.kill()
            raise RuntimeError(
                f"replica {handle.index} did not report a port within "
                f"{SPAWN_TIMEOUT_S}s"
            )
        hello = parent_conn.recv()
        parent_conn.close()
        if isinstance(hello, int):  # older replica build: bare port
            hello = {"port": hello, "host_token": None}
        port = hello["port"]
        with self._lock:
            handle.proc = proc
            handle.port = port
            handle.host_token = hello.get("host_token")
            handle.client = ServiceClient(
                host=self.host, port=port, timeout=self.request_timeout_s
            )
            handle.generation += 1
            handle.started_at = time.monotonic()

    def _respawn(self, handle: ReplicaHandle, expected_generation: int) -> bool:
        """Restart a dead replica slot exactly once per death.

        ``restart_lock`` serializes racers (monitor thread vs router
        dispatchers that all saw the same connection failure); the
        generation re-check under the lock makes the losers no-ops, so a
        single death can never spawn two processes (an orphan would block
        interpreter exit — replicas are non-daemon).
        """
        with handle.restart_lock:
            if self._stopping.is_set() or not self.auto_restart:
                return False
            if handle.generation != expected_generation or handle.alive:
                return False
            try:
                self._spawn(handle)
            except RuntimeError:  # pragma: no cover - spawn refused
                return False
        with self._lock:
            self.restarts += 1
        return True

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(MONITOR_INTERVAL_S):
            for handle in self.handles:
                if self._stopping.is_set():
                    return
                if handle.proc is not None and not handle.alive:
                    self._respawn(handle, handle.generation)

    def report_failure(self, handle: ReplicaHandle, generation: int) -> None:
        """Router-observed failure: restart eagerly if the process is dead
        (the monitor would get there too; this just shortens the gap).
        Stale generations are ignored — that incarnation already went."""
        self._respawn(handle, generation)

    # -- test/chaos hooks --------------------------------------------------
    def kill(self, index: int, graceful: bool = False) -> None:
        """Kill one replica (SIGKILL, or SIGTERM when ``graceful``)."""
        handle = self.handles[index]
        if handle.proc is None:
            return
        if graceful:
            handle.proc.terminate()
        else:
            handle.proc.kill()

    # -- queries -----------------------------------------------------------
    def alive_handles(self) -> list[ReplicaHandle]:
        return [h for h in self.handles if h.alive]

    def describe(self) -> dict:
        with self._lock:
            restarts = self.restarts
        return {
            "replicas": len(self.handles),
            "alive": len(self.alive_handles()),
            "restarts": restarts,
            "cache_dir": self.cache_dir,
            "per_replica": [h.describe() for h in self.handles],
        }

    def stop(self, deadline_s: float | None = None) -> None:
        """Graceful fleet shutdown: SIGTERM, wait, then SIGKILL stragglers."""
        deadline_s = (
            self.drain_s + 5.0 if deadline_s is None else deadline_s
        )
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        # Barrier: an in-flight _respawn finishes (installing its proc in
        # the handle, where the sweep below will see it) before we collect;
        # any respawn that hasn't started yet sees _stopping and refuses.
        for handle in self.handles:
            with handle.restart_lock:
                pass
        procs = [h.proc for h in self.handles if h.proc is not None]
        for proc in procs:
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (ProcessLookupError, TypeError):
                    pass
        t0 = time.monotonic()
        for proc in procs:
            remaining = max(0.1, deadline_s - (time.monotonic() - t0))
            proc.join(timeout=remaining)
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - drain deadline hit
                proc.kill()
                proc.join(timeout=2.0)

    def __enter__(self) -> "ReplicaSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
