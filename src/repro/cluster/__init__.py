"""``repro.cluster`` — the N-replica deployment of the compile-and-run
service.

One :class:`~repro.cluster.replica.ReplicaSupervisor` keeps a fleet of
:class:`~repro.service.server.ReproServer` processes alive (spawned, health
-monitored, restarted on crash), all sharing one content-addressed
:class:`~repro.cache.ArtifactCache` directory so a shape compiled or
calibrated on any replica dispatches pinned-warm on all of them.  A
:class:`~repro.cluster.router.ClusterRouter` front door load-balances the
synchronous ``/compile``/``/run``/``/lint`` endpoints and the async job
protocol (``/submit`` → job ID → ``/poll``/``/result``/``/cancel``) over
the fleet through a durable in-memory :class:`~repro.cluster.jobs.JobQueue`
with bounded depth, per-tenant quotas (:mod:`repro.cluster.quotas`), TTLs,
and a per-job retry budget that survives replica crashes.

Start one with ``python -m repro cluster --replicas 4``; hammer it with
``python -m repro loadtest`` (:mod:`repro.cluster.loadtest`).
"""

from repro.cluster.jobs import AdmissionError, Job, JobQueue
from repro.cluster.quotas import QuotaExceeded, TenantQuotas
from repro.cluster.replica import ReplicaSupervisor
from repro.cluster.router import ClusterRouter, start_cluster

__all__ = [
    "AdmissionError",
    "Job",
    "JobQueue",
    "QuotaExceeded",
    "TenantQuotas",
    "ReplicaSupervisor",
    "ClusterRouter",
    "start_cluster",
]
