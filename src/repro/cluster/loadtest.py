"""The load-test harness: thousands of concurrent mixed requests.

``python -m repro loadtest`` drives a running front door (``--url``) or
self-hosts a throwaway cluster (``--replicas N``) and hammers it with a
weighted mix of operations:

* ``run`` — synchronous ``POST /run`` of a precompiled kernel, the
  response verified **bit-identical** against a locally computed serial
  result on every single request;
* ``submit_poll`` — the async protocol end to end (``/submit`` → poll →
  ``/result``), verified the same way;
* ``compile`` — ``POST /compile`` cycling a small set of distinct-key
  kernel variants (first encounters cold, the rest shared-cache warm);
* ``lint`` — ``POST /lint`` of a clean kernel.

Two arrival disciplines: **closed-loop** (``--concurrency C`` workers,
each issuing its next request the moment the last returns — measures
saturation throughput) and **open-loop** (``--rate R`` arrivals/s for
``--duration S``, independent of response times — measures latency under
a fixed offered load; arrivals beyond the outstanding cap are counted as
``shed``, not silently dropped).

429 admission rejections are counted per-op (``rejected``) and excluded
from latency percentiles — they are the cluster *working as designed*
under saturation, not failures.  Results print as a table or, with
``--json``, as a ``repro.loadtest/v1`` document (what
``bench_p07_cluster.py`` consumes).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.service.client import ServiceClient, ServiceError

#: The run kernel (python frontend). O(n*m) interpreted body per request.
RUN_KERNEL = """
def ltwork(A, B, n, m):
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            B[i, j] = 2.0 * A[i, j] + 0.5 * B[i, j] + 1.0
"""

#: Distinct-key compile variants (the constant changes the content hash).
COMPILE_KERNEL = """
def ltcomp{i}(A, B, n, m):
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            B[i, j] = {i}.0 * A[i, j] + B[i, j]
"""

LINT_KERNEL = """
procedure ltlint(X[1], Y[1]; n)
  doall i = 1, n
    Y(i) := Y(i) + 2.0 * X(i)
  end
end
"""

DEFAULT_MIX = {"run": 60, "submit_poll": 20, "compile": 10, "lint": 10}


@dataclass
class LoadResult:
    """One request's outcome."""

    op: str
    ok: bool
    latency_s: float
    status: int = 200
    rejected: bool = False


@dataclass
class _Shared:
    """State shared by every worker thread."""

    results: list[LoadResult] = field(default_factory=list)
    verify_failures: int = 0
    shed: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)
    stop: threading.Event = field(default_factory=threading.Event)
    issued: int = 0

    def record(self, result: LoadResult) -> None:
        with self.lock:
            self.results.append(result)

    def take_ticket(self, limit: int | None) -> bool:
        """Closed-loop budget: claim one of ``limit`` total requests."""
        with self.lock:
            if limit is not None and self.issued >= limit:
                return False
            self.issued += 1
            return True


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


class LoadTest:
    """One configured load-test run against one front door."""

    def __init__(
        self,
        host: str,
        port: int,
        mix: dict[str, int] | None = None,
        run_n: int = 32,
        compile_variants: int = 8,
        tenant: str = "loadtest",
        timeout_s: float = 120.0,
        seed: int = 7,
        transport: str = "json",
    ) -> None:
        if transport not in ("json", "wire", "shm"):
            raise ValueError(
                f"unknown transport {transport!r} (json|wire|shm)"
            )
        self.transport = transport
        self.client = ServiceClient(
            host=host,
            port=port,
            timeout=timeout_s,
            retries=3,
            retry_deadline_s=timeout_s,
        )
        mix = dict(mix or DEFAULT_MIX)
        self.ops = [op for op, w in mix.items() if w > 0]
        self.weights = [mix[op] for op in self.ops]
        self.run_n = run_n
        self.compile_variants = compile_variants
        self.tenant = tenant
        self.seed = seed
        self.run_key: str | None = None
        self.expected_B: np.ndarray | None = None
        self.A: np.ndarray | None = None
        self.B0: np.ndarray | None = None

    # -- setup -------------------------------------------------------------
    def prepare(self) -> None:
        """Compile the run kernel through the front door and compute the
        serial ground truth locally (the bit-identity oracle)."""
        from repro.api import transform_function

        program = self.client.compile(RUN_KERNEL, backend="python")
        self.run_key = program["key"]
        rng = np.random.default_rng(self.seed)
        n = self.run_n
        self.A = rng.random((n + 1, n + 1))
        self.B0 = rng.random((n + 1, n + 1))
        self.expected_B = self.B0.copy()
        local = transform_function(RUN_KERNEL, cache=None)
        local(self.A, self.expected_B, n, n)

    # -- one request of each kind -----------------------------------------
    def _verify(self, arrays: dict) -> bool:
        return bool(np.array_equal(arrays["B"], self.expected_B))

    def _op_run(self) -> LoadResult:
        t0 = time.perf_counter()
        out = self.client.run(
            self.run_key,
            {"A": self.A, "B": self.B0},
            {"n": self.run_n, "m": self.run_n},
            transport=self.transport,
            tenant=self.tenant,
        )
        latency = time.perf_counter() - t0
        ok = self._verify(out["arrays"])
        return LoadResult("run", ok, latency)

    def _op_submit_poll(self) -> LoadResult:
        # The shm transport is synchronous-only: async submissions fall
        # back to the wire frame (still binary, still zero-copy routed).
        transport = "wire" if self.transport == "shm" else self.transport
        t0 = time.perf_counter()
        job = self.client.submit_run(
            self.run_key,
            {"A": self.A, "B": self.B0},
            {"n": self.run_n, "m": self.run_n},
            tenant=self.tenant,
            transport=transport,
        )
        doc = self.client.wait(job["job_id"], timeout=self.client.timeout)
        latency = time.perf_counter() - t0
        ok = doc["state"] == "done" and self._verify(doc["result"]["arrays"])
        return LoadResult("submit_poll", ok, latency)

    def _op_compile(self, rng: random.Random) -> LoadResult:
        src = COMPILE_KERNEL.format(i=rng.randrange(self.compile_variants))
        t0 = time.perf_counter()
        out = self.client.compile(src, backend="python", tenant=self.tenant)
        return LoadResult("compile", "key" in out, time.perf_counter() - t0)

    def _op_lint(self) -> LoadResult:
        t0 = time.perf_counter()
        out = self.client.lint(LINT_KERNEL, tenant=self.tenant)
        return LoadResult("lint", bool(out.get("ok")), time.perf_counter() - t0)

    def _one(self, rng: random.Random, shared: _Shared) -> None:
        op = rng.choices(self.ops, weights=self.weights, k=1)[0]
        try:
            if op == "run":
                result = self._op_run()
            elif op == "submit_poll":
                result = self._op_submit_poll()
            elif op == "compile":
                result = self._op_compile(rng)
            else:
                result = self._op_lint()
        except ServiceError as exc:
            result = LoadResult(
                op,
                ok=False,
                latency_s=0.0,
                status=exc.status,
                rejected=exc.status == 429,
            )
            if exc.status == 429 and exc.retry_after is not None:
                # Honor the admission hint (capped: keep the loop hot).
                shared.stop.wait(min(0.2, exc.retry_after))
        except Exception:
            result = LoadResult(op, ok=False, latency_s=0.0, status=0)
        if result.op in ("run", "submit_poll") and not result.ok and (
            result.status == 200
        ):
            with shared.lock:
                shared.verify_failures += 1
        shared.record(result)

    # -- arrival disciplines ----------------------------------------------
    def run_closed(
        self,
        concurrency: int,
        requests: int | None = None,
        duration_s: float | None = None,
    ) -> dict:
        """Closed loop: C workers, back-to-back requests."""
        shared = _Shared()
        deadline = (
            None if duration_s is None else time.monotonic() + duration_s
        )

        def worker(wid: int) -> None:
            rng = random.Random(self.seed * 1000 + wid)
            while not shared.stop.is_set():
                if deadline is not None and time.monotonic() >= deadline:
                    break
                if not shared.take_ticket(requests):
                    break
                self._one(rng, shared)

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(concurrency)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        return self._summarize(
            shared, wall, mode="closed", concurrency=concurrency
        )

    def run_open(
        self,
        rate_rps: float,
        duration_s: float,
        max_outstanding: int = 256,
    ) -> dict:
        """Open loop: Poisson-ish fixed-rate arrivals, latency under load."""
        shared = _Shared()
        outstanding = threading.Semaphore(max_outstanding)
        threads: list[threading.Thread] = []
        rng_seq = random.Random(self.seed)

        def fire(wid: int) -> None:
            rng = random.Random(self.seed * 1000 + wid)
            try:
                self._one(rng, shared)
            finally:
                outstanding.release()

        t0 = time.perf_counter()
        deadline = t0 + duration_s
        wid = 0
        interval = 1.0 / rate_rps
        next_at = t0
        while time.perf_counter() < deadline:
            now = time.perf_counter()
            if now < next_at:
                time.sleep(min(interval, next_at - now))
                continue
            next_at += interval * rng_seq.uniform(0.5, 1.5)
            if not outstanding.acquire(blocking=False):
                with shared.lock:
                    shared.shed += 1
                continue
            t = threading.Thread(target=fire, args=(wid,), daemon=True)
            threads.append(t)
            t.start()
            wid += 1
        for t in threads:
            t.join(timeout=self.client.timeout)
        wall = time.perf_counter() - t0
        return self._summarize(
            shared, wall, mode="open", rate_rps=rate_rps
        )

    # -- reporting ---------------------------------------------------------
    def _summarize(self, shared: _Shared, wall_s: float, **config) -> dict:
        config.setdefault("transport", self.transport)
        per_op: dict[str, dict] = {}
        for op in self.ops:
            rows = [r for r in shared.results if r.op == op]
            lat = sorted(
                r.latency_s for r in rows if r.ok and not r.rejected
            )
            per_op[op] = {
                "requests": len(rows),
                "ok": sum(1 for r in rows if r.ok),
                "errors": sum(
                    1 for r in rows if not r.ok and not r.rejected
                ),
                "rejected": sum(1 for r in rows if r.rejected),
                "p50_ms": round(_percentile(lat, 0.50) * 1e3, 3),
                "p90_ms": round(_percentile(lat, 0.90) * 1e3, 3),
                "p99_ms": round(_percentile(lat, 0.99) * 1e3, 3),
                "mean_ms": round(
                    (sum(lat) / len(lat) * 1e3) if lat else 0.0, 3
                ),
            }
        completed = sum(1 for r in shared.results if r.ok)
        all_lat = sorted(
            r.latency_s for r in shared.results if r.ok and not r.rejected
        )
        return {
            "schema": "repro.loadtest/v1",
            "config": {
                **config,
                "mix": dict(zip(self.ops, self.weights)),
                "run_n": self.run_n,
                "tenant": self.tenant,
            },
            "wall_s": round(wall_s, 4),
            "requests": len(shared.results),
            "completed": completed,
            "errors": sum(
                1 for r in shared.results if not r.ok and not r.rejected
            ),
            "rejected": sum(1 for r in shared.results if r.rejected),
            "shed": shared.shed,
            "verify_failures": shared.verify_failures,
            "throughput_rps": round(completed / wall_s, 3) if wall_s else 0.0,
            "p50_ms": round(_percentile(all_lat, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(all_lat, 0.99) * 1e3, 3),
            "per_op": per_op,
        }


def format_report(doc: dict) -> str:
    """Human-readable table of a ``repro.loadtest/v1`` document."""
    lines = [
        f"loadtest [{doc['config'].get('mode', '?')}]: "
        f"{doc['requests']} requests in {doc['wall_s']}s -> "
        f"{doc['throughput_rps']} req/s, "
        f"p50={doc['p50_ms']}ms p99={doc['p99_ms']}ms, "
        f"errors={doc['errors']} rejected={doc['rejected']} "
        f"shed={doc['shed']} verify_failures={doc['verify_failures']}",
        f"{'op':<12} {'reqs':>6} {'ok':>6} {'err':>5} {'429':>5} "
        f"{'p50ms':>9} {'p90ms':>9} {'p99ms':>9} {'meanms':>9}",
    ]
    for op, row in doc["per_op"].items():
        lines.append(
            f"{op:<12} {row['requests']:>6} {row['ok']:>6} "
            f"{row['errors']:>5} {row['rejected']:>5} "
            f"{row['p50_ms']:>9} {row['p90_ms']:>9} {row['p99_ms']:>9} "
            f"{row['mean_ms']:>9}"
        )
    return "\n".join(lines)


def run_loadtest(
    host: str = "127.0.0.1",
    port: int = 8923,
    mode: str = "closed",
    concurrency: int = 16,
    requests: int | None = 500,
    duration_s: float | None = None,
    rate_rps: float = 50.0,
    mix: dict[str, int] | None = None,
    run_n: int = 32,
    tenant: str = "loadtest",
    seed: int = 7,
    transport: str = "json",
) -> dict:
    """Programmatic entry point (what the bench and tests call)."""
    test = LoadTest(
        host=host, port=port, mix=mix, run_n=run_n, tenant=tenant,
        seed=seed, transport=transport,
    )
    test.prepare()
    if mode == "closed":
        return test.run_closed(
            concurrency=concurrency,
            requests=requests,
            duration_s=duration_s,
        )
    if mode == "open":
        return test.run_open(
            rate_rps=rate_rps, duration_s=duration_s or 5.0
        )
    raise ValueError(f"unknown mode {mode!r} (closed|open)")


def loadtest_main(argv: list[str] | None = None) -> int:
    """``python -m repro loadtest`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro loadtest",
        description="Hammer a repro cluster (or lone server) with a mixed "
        "compile/run/lint/submit-poll workload",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8923)
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="self-host: start a throwaway N-replica cluster (with a "
        "temporary shared cache) instead of targeting --host/--port",
    )
    parser.add_argument(
        "--mode", choices=("closed", "open"), default="closed"
    )
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument(
        "--requests",
        type=int,
        default=500,
        help="closed-loop total request budget",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many seconds (required for --mode open)",
    )
    parser.add_argument(
        "--rate", type=float, default=50.0, help="open-loop arrivals/s"
    )
    parser.add_argument(
        "--mix",
        default=None,
        metavar="SPEC",
        help="op weights, e.g. run:60,submit_poll:20,compile:10,lint:10",
    )
    parser.add_argument("--run-n", type=int, default=32)
    parser.add_argument(
        "--transport",
        choices=("json", "wire", "shm"),
        default="json",
        help="array transport for run ops: json lists, repro.wire/v1 "
        "binary frames, or same-host shared-memory handoff",
    )
    parser.add_argument("--tenant", default="loadtest")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the repro.loadtest/v1 document instead of the table",
    )
    args = parser.parse_args(argv)

    mix = None
    if args.mix:
        mix = {}
        for part in args.mix.split(","):
            op, _, weight = part.partition(":")
            mix[op.strip()] = int(weight or 1)
        unknown = set(mix) - set(DEFAULT_MIX)
        if unknown:
            print(f"error: unknown ops {sorted(unknown)}", file=sys.stderr)
            return 2

    cleanup = None
    host, port = args.host, args.port
    if args.replicas is not None:
        from repro.cluster.router import start_cluster

        tmp = tempfile.TemporaryDirectory(prefix="repro_loadtest_cache_")
        router, supervisor, _ = start_cluster(
            replicas=args.replicas, cache_dir=tmp.name
        )
        host, port = "127.0.0.1", router.port
        print(
            f"loadtest: self-hosted {args.replicas}-replica cluster "
            f"on port {port}",
            file=sys.stderr,
        )

        def cleanup() -> None:
            router.shutdown()
            router.close()
            supervisor.stop()
            tmp.cleanup()

    try:
        doc = run_loadtest(
            host=host,
            port=port,
            mode=args.mode,
            concurrency=args.concurrency,
            requests=args.requests,
            duration_s=args.duration,
            rate_rps=args.rate,
            mix=mix,
            run_n=args.run_n,
            tenant=args.tenant,
            seed=args.seed,
            transport=args.transport,
        )
    finally:
        if cleanup is not None:
            cleanup()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_report(doc))
    return 0 if doc["errors"] == 0 and doc["verify_failures"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(loadtest_main())
