"""The compile-and-run HTTP server (stdlib ``ThreadingHTTPServer``).

One resident process serves many clients: compiles are content-addressed
through :mod:`repro.cache`, compiled programs stay registered in memory,
and mp-backend runs dispatch through warm per-(workers, shape) worker
pools guarded by per-pool locks (concurrent requests with the same shape
serialize on the pool; different shapes run in parallel).

Start it with ``python -m repro serve`` and talk JSON::

    curl -s localhost:8923/healthz
    curl -s -X POST localhost:8923/compile -d '{"source": "..."}'
    curl -s -X POST localhost:8923/run -d '{"key": "...", "arrays": {...}}'
    curl -s -X POST localhost:8923/lint -d '{"source": "..."}'
    curl -s localhost:8923/metrics

``POST /lint`` compiles the source exactly the way the mp backend would
and returns the chunk-safety verifier's structured findings
(:mod:`repro.lint`, schema ``repro.lint/v1``); an options block with
``"transforms": "fission,reduction"`` runs the parallelism-recovery
passes first and adds their FISS001/FISS002/RED001 findings.
``POST /compile`` accepts the same ``transforms`` option, and mp runs
of such programs report a ``reductions`` dispatch count.  ``POST /run`` accepts a
``safety`` option (``"off"``/``"warn"``/``"enforce"``/``"speculate"``);
an enforce run whose every dispatch is refused degrades to the serial
build with the refusal reason in the response, and a speculate run
reports its per-dispatch dynamic outcomes (inspected / proven_dynamic /
speculated / committed / rolled_back) in a ``speculate`` block.

``POST /compile`` with ``backend="mp"`` also *pre-warms* the native chunk
kernels for every dispatchable loop of the program — gcc runs at compile
time, content-addressed into the artifact cache, so the first ``/run``
resolves each kernel as a cache hit instead of paying compile latency.

``POST /run`` speaks three transports, negotiated per request (JSON stays
the compatibility default):

- **json** — arrays as nested lists, now with ``array_dtypes`` tags (the
  caller's dtype survives the round trip) and RFC-safe non-finite
  encoding (NaN/Inf travel as sentinel strings, never as bare tokens).
- **wire** — ``Content-Type: application/x-repro-wire`` request bodies
  carry a :mod:`repro.wire` binary frame; arrays decode as zero-copy
  ``np.frombuffer`` views loaded straight into the warm pool's shm
  segments, and the response is a wire frame when the client ``Accept``s
  one.
- **shm** — a JSON body with ``"transport": "shm"`` names the *client's*
  shared-memory segments; the server attaches them, runs in place, and
  responds with segment names only — zero array bytes on the socket in
  either direction.  Same-host only (the client gates on the
  ``host_token`` published by ``/healthz``; a failed attach is a 400).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

import numpy as np

from repro import wire
from repro.api import lower_and_coalesce
from repro.cache import artifact_key, resolve_cache
from repro.codegen.pygen import CompiledProcedure, compile_procedure
from repro.ir.printer import to_source
from repro.parallel.errors import ParallelDispatchError, ParallelError
from repro.parallel.observe import (
    TransportCounters,
    metrics_snapshot,
    record_fallback,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.runtime import run_parallel_procedure
from repro.parallel.shm import SEGMENT_PREFIX, ArraySpec, attach_array

DEFAULT_PORT = 8923

#: /compile options forwarded to the pipeline, with their defaults.
PIPELINE_OPTIONS = {
    "style": "ceiling",
    "depth": None,
    "distribute": True,
    "analyze": True,
    "triangular": False,
    "transforms": None,
}


class RequestError(Exception):
    """A client error: maps to an HTTP 4xx with a JSON body.

    ``headers`` carries extra response headers — the cluster router uses
    it for ``Retry-After`` on 429 admission rejections.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


@dataclass
class CompiledProgram:
    """One compiled entry in the server's in-memory program registry."""

    key: str
    proc: object
    results: list
    backend: str
    from_cache: bool
    compile_s: float
    serial: CompiledProcedure
    cbackend: object | None = None  # CProcedure when backend == "c"
    #: Native chunk kernels compiled (or cache-hit) at /compile time for
    #: the mp backend, so the first /run never pays gcc latency.
    warm_kernels: int = 0

    def describe(self) -> dict:
        transforms = [r for r in self.results if hasattr(r, "outcomes")]
        out = {
            "key": self.key,
            "name": self.proc.name,
            "backend": self.backend,
            "cached": self.from_cache,
            "compile_s": round(self.compile_s, 6),
            "coalesced_nests": len(self.results) - len(transforms),
            "loop_source": to_source(self.proc),
            "arrays": dict(self.proc.arrays),
            "scalars": list(self.proc.scalars),
            "warm_kernels": self.warm_kernels,
        }
        if transforms:
            out["transforms"] = {
                "summary": [r.summary() for r in transforms],
                "findings": [
                    f.to_dict() for r in transforms for f in r.findings
                ],
            }
        return out


class _WarmPool:
    """A resident worker fleet plus the lock that serializes runs on it."""

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self.lock = threading.Lock()


class PoolRegistry:
    """Warm :class:`WorkerPool` per (workers, array-shape signature).

    ``lease`` hands out a pool with its per-pool lock held, creating (and
    LRU-evicting idle) pools as needed.  A pool that breaks during a run
    is closed and dropped, so the next request with that shape gets a
    fresh fleet.
    """

    def __init__(self, max_pools: int = 4) -> None:
        self.max_pools = max_pools
        self._pools: OrderedDict[tuple, _WarmPool] = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def signature(workers: int, arrays: Mapping[str, np.ndarray]) -> tuple:
        return (
            workers,
            tuple(
                sorted(
                    (name, tuple(a.shape), str(a.dtype))
                    for name, a in arrays.items()
                )
            ),
        )

    def _evict_idle(self) -> None:
        """Drop oldest idle pools until under budget (soft cap: busy pools
        are never evicted, so a burst of distinct shapes may exceed it)."""
        for sig in list(self._pools):
            if len(self._pools) < self.max_pools:
                break
            wp = self._pools[sig]
            if wp.lock.acquire(blocking=False):
                try:
                    del self._pools[sig]
                    wp.pool.close()
                finally:
                    wp.lock.release()

    @contextlib.contextmanager
    def lease(self, workers: int, arrays: Mapping[str, np.ndarray]):
        sig = self.signature(workers, arrays)
        with self._lock:
            wp = self._pools.get(sig)
            if wp is None:
                self._evict_idle()
                wp = _WarmPool(WorkerPool(arrays, workers=workers))
                self._pools[sig] = wp
            else:
                self._pools.move_to_end(sig)
        with wp.lock:
            try:
                yield wp.pool
            finally:
                if wp.pool.broken:
                    with self._lock:
                        if self._pools.get(sig) is wp:
                            del self._pools[sig]
                    wp.pool.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)

    def close_all(self, force: bool = False) -> None:
        """Close every pool.  ``force=True`` (the shutdown-deadline path)
        waits only briefly for a busy pool's run to finish before closing
        it anyway — the run fails, but the shm segments get unlinked."""
        with self._lock:
            pools, self._pools = list(self._pools.values()), OrderedDict()
        for wp in pools:
            locked = wp.lock.acquire(timeout=2.0 if force else -1)
            try:
                wp.pool.close()
            finally:
                if locked:
                    wp.lock.release()


class ReproServer(ThreadingHTTPServer):
    """The resident compile-and-run service."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        cache: object = "default",
        max_pools: int = 4,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.cache = resolve_cache(cache)
        self.verbose = verbose
        self.programs: dict[str, CompiledProgram] = {}
        self.pools = PoolRegistry(max_pools)
        self.counters = {
            "requests": 0,
            "compiles": 0,
            "compile_cache_hits": 0,
            "runs": 0,
            "lints": 0,
            "errors": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }
        self.transport = TransportCounters()
        self._state_lock = threading.Lock()
        self._started = time.monotonic()
        self._inflight = 0

    # -- state ------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.server_address[1]

    def bump(self, name: str, by: int = 1) -> None:
        with self._state_lock:
            self.counters[name] += by

    def bump_transport(self, transport: str) -> None:
        with self._state_lock:
            self.transport.bump(transport)

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    def begin_request(self) -> None:
        with self._state_lock:
            self._inflight += 1

    def end_request(self) -> None:
        with self._state_lock:
            self._inflight -= 1

    def drain(self, deadline_s: float = 5.0) -> bool:
        """Wait for in-flight requests to finish (post-``shutdown()``).

        The listener is already closed, so no new work arrives; this
        blocks until every handler thread has written its response or the
        deadline passes.  Returns True when fully drained.
        """
        t0 = time.monotonic()
        while self.inflight > 0 and time.monotonic() - t0 < deadline_s:
            time.sleep(0.02)
        return self.inflight == 0

    def server_metrics(self) -> dict:
        with self._state_lock:
            counters = dict(self.counters)
            transport = self.transport.as_dict()
            inflight = self._inflight
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "programs": len(self.programs),
            "warm_pools": len(self.pools),
            "inflight": inflight,
            "host_token": wire.host_token(),
            "transport": transport,
            **counters,
        }

    def close(self, force: bool = False) -> None:
        self.pools.close_all(force=force)
        self.server_close()

    # -- request logic (handler methods delegate here) --------------------
    def handle_compile(self, body: dict) -> dict:
        source = body.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError(400, "body must carry a non-empty 'source'")
        frontend = body.get("frontend", "auto")
        if frontend == "auto":
            frontend = (
                "dsl" if source.lstrip().startswith("procedure") else "python"
            )
        if frontend not in ("python", "dsl"):
            raise RequestError(400, f"unknown frontend {frontend!r}")
        backend = body.get("backend", "python")
        if backend not in ("python", "mp", "c"):
            raise RequestError(400, f"unknown backend {backend!r}")
        options = dict(PIPELINE_OPTIONS)
        for name, value in (body.get("options") or {}).items():
            if name not in options:
                raise RequestError(400, f"unknown option {name!r}")
            options[name] = value

        t0 = time.perf_counter()
        try:
            _, proc, results, from_cache = lower_and_coalesce(
                source, frontend=frontend, cache=self.cache, **options
            )
        except RequestError:
            raise
        except Exception as exc:
            raise RequestError(400, f"compile failed: {exc}") from exc
        key = artifact_key(
            "program",
            source=source,
            frontend=frontend,
            backend=backend,
            **options,
        )
        cbackend = None
        if backend == "c":
            from repro.codegen.cload import (
                CCompileError,
                compile_c_procedure,
                have_compiler,
            )

            if not have_compiler():
                raise RequestError(400, "backend 'c' needs a gcc on PATH")
            try:
                cbackend = compile_c_procedure(proc, cache=self.cache)
            except CCompileError as exc:
                raise RequestError(400, f"C compile failed: {exc}") from exc
            from_cache = from_cache and cbackend.from_cache
        warm_kernels = 0
        if backend == "mp":
            warm_kernels = _prewarm_chunk_kernels(proc, self.cache)
        program = CompiledProgram(
            key=key,
            proc=proc,
            results=results,
            backend=backend,
            from_cache=from_cache,
            compile_s=time.perf_counter() - t0,
            serial=compile_procedure(proc),
            cbackend=cbackend,
            warm_kernels=warm_kernels,
        )
        with self._state_lock:
            self.programs[key] = program
        self.bump("compiles")
        if from_cache:
            self.bump("compile_cache_hits")
        return program.describe()

    def handle_lint(self, body: dict) -> dict:
        source = body.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError(400, "body must carry a non-empty 'source'")
        frontend = body.get("frontend", "auto")
        if frontend == "auto":
            frontend = (
                "dsl" if source.lstrip().startswith("procedure") else "python"
            )
        if frontend not in ("python", "dsl"):
            raise RequestError(400, f"unknown frontend {frontend!r}")
        options = {
            "style": "ceiling",
            "depth": None,
            "triangular": False,
            "transforms": None,
        }
        for name, value in (body.get("options") or {}).items():
            if name not in options:
                raise RequestError(400, f"unknown option {name!r}")
            options[name] = value
        from repro.lint.engine import lint_source

        try:
            report = lint_source(
                source, frontend=frontend, cache=self.cache, **options
            )
        except RequestError:
            raise
        except Exception as exc:
            raise RequestError(400, f"lint failed: {exc}") from exc
        self.bump("lints")
        return report.to_dict()

    def handle_run(
        self,
        body: dict,
        wire_views: Mapping[str, np.ndarray] | None = None,
        want_wire: bool = False,
    ) -> dict | bytes:
        """Serve one run over any of the three transports.

        ``wire_views`` carries the zero-copy ``np.frombuffer`` views of a
        binary request (read-only: they are loaded into the warm pool's
        shm segments, never mutated); ``want_wire`` asks for a binary
        response frame (the return value is then ``bytes``).  A JSON body
        with ``"transport": "shm"`` instead names client-owned segments
        to attach and run in place.
        """
        key = body.get("key")
        program = self.programs.get(key) if isinstance(key, str) else None
        if program is None:
            raise RequestError(
                404, f"unknown program key {key!r} (POST /compile first)"
            )
        proc = program.proc
        shm_handles: list = []
        if wire_views is not None:
            transport = "wire"
            arrays = _check_wire_arrays(wire_views, proc)
        elif body.get("transport") == "shm":
            transport = "shm"
            arrays, shm_handles = _attach_shm_arrays(
                body.get("shm_arrays"), proc
            )
        elif body.get("transport") in (None, "json"):
            transport = "json"
            arrays = _decode_arrays(
                body.get("arrays"), proc, body.get("array_dtypes")
            )
        else:
            raise RequestError(
                400,
                f"unknown transport {body.get('transport')!r} "
                "(json and shm are the JSON-body transports; binary uses "
                f"Content-Type: {wire.CONTENT_TYPE})",
            )
        scalars = _decode_scalars(body.get("scalars"), proc)
        backend = body.get("backend", program.backend)
        workers = int(body.get("workers", 4))
        policy = body.get("policy", "gss")
        chunk = body.get("chunk")
        claim_batch = body.get("claim_batch", "auto")
        if claim_batch != "auto":
            try:
                claim_batch = int(claim_batch)
            except (TypeError, ValueError) as exc:
                raise RequestError(
                    400,
                    f"claim_batch must be an int or 'auto' "
                    f"(got {claim_batch!r})",
                ) from exc
        chunk_lang = body.get("chunk_lang", "auto")
        if chunk_lang not in ("auto", "py", "c", "numpy"):
            raise RequestError(
                400,
                "chunk_lang must be 'auto', 'py', 'c', or 'numpy' "
                f"(got {chunk_lang!r})",
            )
        variants = body.get("variants")
        calibrate = body.get("calibrate")
        if calibrate is not None and not isinstance(calibrate, bool):
            raise RequestError(
                400, f"calibrate must be a boolean (got {calibrate!r})"
            )
        timeout = body.get("timeout")
        safety = body.get("safety")
        if safety is not None and safety not in (
            "off", "warn", "enforce", "speculate",
        ):
            raise RequestError(
                400,
                "safety must be 'off', 'warn', 'enforce', or 'speculate' "
                f"(got {safety!r})",
            )

        if chunk_lang in ("auto", "c", "numpy") and any(
            a.dtype != np.float64 for a in arrays.values()
        ):
            # The compiled chunk variants (C kernels, numpy slice chunks)
            # are built for float64; any other served dtype takes the
            # interpreted chunk floor, which is dtype-generic.
            chunk_lang = "py"

        run_kwargs = dict(
            workers=workers,
            policy=policy,
            chunk=chunk,
            claim_batch=claim_batch,
            chunk_lang=chunk_lang,
            timeout=timeout,
            log_events=bool(body.get("log_events", False)),
            safety=safety,
            variants=variants,
            calibrate=calibrate,
        )
        t0 = time.perf_counter()
        response: dict | bytes
        try:
            if backend == "mp" and transport == "wire":
                # Zero-copy ingest: the frombuffer views load straight
                # into the pool's shm segments; the run executes on
                # ``pool.views`` (the request views are read-only) and
                # the response is encoded from the views while the lease
                # is still held.
                with self.pools.lease(workers, arrays) as pool:
                    pool.load(arrays)
                    engine, stats = self._exec_mp(
                        program, pool.views, scalars, run_kwargs,
                        pool, preloaded=True,
                    )
                    response = self._run_response(
                        key, engine, stats, t0, pool.views,
                        transport, want_wire,
                    )
            elif backend == "mp":
                with self.pools.lease(workers, arrays) as pool:
                    engine, stats = self._exec_mp(
                        program, arrays, scalars, run_kwargs,
                        pool, preloaded=False,
                    )
                response = self._run_response(
                    key, engine, stats, t0, arrays, transport, want_wire
                )
            else:
                if transport == "wire":
                    # Serial backends mutate in place; the request views
                    # are read-only, so materialize writable copies.
                    arrays = {n: np.array(v) for n, v in arrays.items()}
                if backend == "c" and program.cbackend is not None:
                    program.cbackend.run(arrays, scalars)
                    engine = "c"
                else:
                    program.serial.run(arrays, scalars)
                    engine = "serial"
                response = self._run_response(
                    key, engine, {}, t0, arrays, transport, want_wire
                )
        except RequestError:
            raise
        except (ParallelError, ValueError) as exc:
            raise RequestError(400, f"run failed: {exc}") from exc
        finally:
            if shm_handles:
                arrays = {}
                for handle in shm_handles:
                    try:
                        handle.close()
                    except BufferError:  # pragma: no cover - defensive
                        pass
        self.bump("runs")
        self.bump_transport(transport)
        return response

    def _exec_mp(
        self, program, arrays, scalars, run_kwargs, pool, preloaded
    ) -> tuple[str, dict]:
        """One mp-backend run on a leased pool, with the serial fallback."""
        try:
            result = run_parallel_procedure(
                program.proc,
                arrays,
                scalars,
                pool=pool,
                preloaded=preloaded,
                **run_kwargs,
            )
        except ParallelDispatchError as exc:
            # Nothing dispatchable (or safety=enforce refused every
            # dispatch): degrade exactly like backend="mp" in-process —
            # run the serial build, say why.
            record_fallback()
            program.serial.run(arrays, scalars)
            return (
                "serial-fallback",
                {"fallback_reason": f"{type(exc).__name__}: {exc}"},
            )
        stats = {
            "dispatches": len(result.dispatches),
            "claims": result.claims,
            "lock_ops": result.lock_ops,
            "iterations": result.total_iterations,
            "chunk_lang": result.chunk_lang,
            "variants": result.variants,
            "calibrations": result.calibrations,
            "pinned_decisions": result.pinned_decisions,
            "safety": result.safety_mode,
            "blocked_dispatches": result.blocked_dispatches,
            "reductions": result.reductions,
        }
        if result.safety_mode == "speculate":
            stats["speculate"] = {
                "inspected": result.inspected,
                "proven_dynamic": result.proven_dynamic,
                "speculated": result.speculated,
                "committed": result.committed,
                "rolled_back": result.rolled_back,
                "certificates": [c.to_dict() for c in result.certificates],
            }
        return "mp-pool", stats

    def _run_response(
        self, key, engine, stats, t0, arrays, transport, want_wire
    ) -> dict | bytes:
        """Encode a run result for the transport the client negotiated."""
        base = {
            "key": key,
            "engine": engine,
            "transport": transport,
            "wall_s": round(time.perf_counter() - t0, 6),
            **stats,
        }
        if transport == "shm":
            # Results already live in the client's segments; ship names
            # only — zero array bytes on the socket.
            base["shm"] = {"arrays": sorted(arrays)}
            return base
        if want_wire:
            return wire.encode_frame(base, arrays)
        base["arrays"] = {
            name: wire.jsonable_array(a) for name, a in arrays.items()
        }
        base["array_dtypes"] = wire.dtype_tags(arrays)
        return base


def _prewarm_chunk_kernels(proc, cache) -> int:
    """Build the variant farm for every dispatchable loop at /compile time.

    Compiles every available C variant (and generates the numpy chunk)
    with the integer-scalar type signature (what JSON-decoded scalar
    payloads resolve to), content-addressed into the artifact cache — so
    the first /run's kernel resolution is a cache hit, never a compile,
    whichever variant calibration later picks.  Returns the number of
    builds warmed; failures (no compiler, ineligible shape) warm nothing
    and cost one attempt each.
    """
    from repro.analysis.pdg import recognize_reduction
    from repro.parallel.runtime import (
        _dispatchable_loops,
        _DispatchCaches,
        derive_reduction_dispatch,
    )
    from repro.tuning.variants import available_variants

    caches = _DispatchCaches()
    caches.store = cache
    warmed = 0
    for lp in _dispatchable_loops(proc.body):
        # A recognized reduction dispatches the *derived* strip-mined
        # procedure (partial accumulators), so warm that kernel instead.
        kproc, kloop = proc, lp
        red = recognize_reduction(lp)
        if red is not None and red.scalar not in proc.arrays:
            try:
                plan = derive_reduction_dispatch(proc, lp, red)
            except Exception:
                plan = None
            if plan is not None:
                kproc, kloop = plan.proc, plan.loop
        env = {name: 1 for name in kproc.scalars}
        for variant in available_variants("auto"):
            if variant.lang == "c":
                built = caches.chunk_kernel(
                    kproc, kloop, (), env, variant=variant
                )
            elif variant.lang == "numpy":
                built = caches.numpy_chunk(kproc, kloop, ())
            else:
                continue  # the py chunk needs no warming
            if built is not None:
                warmed += 1
    return warmed


def _decode_arrays(raw, proc, dtypes=None) -> dict[str, np.ndarray]:
    """JSON array payload → ndarrays matching the procedure.

    ``dtypes`` is the optional ``array_dtypes`` tag block
    (``{name: numpy dtype string}``) that lets a caller's dtype survive
    the JSON round trip; untagged arrays keep the historical float64
    default.  Sentinel-encoded non-finite entries (``"NaN"`` etc., see
    :func:`repro.wire.array_from_json`) decode back to floats.
    """
    raw = raw or {}
    if not isinstance(raw, dict):
        raise RequestError(400, "'arrays' must be an object of name -> data")
    if dtypes is None:
        dtypes = {}
    if not isinstance(dtypes, dict):
        raise RequestError(
            400, "'array_dtypes' must be an object of name -> dtype string"
        )
    out: dict[str, np.ndarray] = {}
    for name, rank in proc.arrays.items():
        if name not in raw:
            raise RequestError(400, f"missing array {name!r}")
        tag = dtypes.get(name, "<f8")
        try:
            dtype = np.dtype(tag)
        except (TypeError, ValueError) as exc:
            raise RequestError(
                400, f"array {name!r}: bad dtype tag {tag!r}"
            ) from exc
        if dtype.hasobject:
            raise RequestError(
                400, f"array {name!r}: object dtypes are not servable"
            )
        try:
            arr = wire.array_from_json(raw[name], dtype)
        except (TypeError, ValueError) as exc:
            raise RequestError(400, f"array {name!r}: {exc}") from exc
        if arr.ndim != rank:
            raise RequestError(
                400, f"array {name!r}: rank {rank} expected, got {arr.ndim}"
            )
        out[name] = np.ascontiguousarray(arr)
    extra = set(raw) - set(out)
    if extra:
        raise RequestError(400, f"unknown arrays: {sorted(extra)}")
    return out


def _check_wire_arrays(views, proc) -> dict[str, np.ndarray]:
    """Validate a wire frame's decoded views against the procedure."""
    missing = set(proc.arrays) - set(views)
    if missing:
        raise RequestError(400, f"missing arrays: {sorted(missing)}")
    extra = set(views) - set(proc.arrays)
    if extra:
        raise RequestError(400, f"unknown arrays: {sorted(extra)}")
    for name, rank in proc.arrays.items():
        if views[name].ndim != rank:
            raise RequestError(
                400,
                f"array {name!r}: rank {rank} expected, "
                f"got {views[name].ndim}",
            )
    return dict(views)


def _attach_shm_arrays(raw, proc) -> tuple[dict[str, np.ndarray], list]:
    """Attach the client's shared-memory segments (shm fast path).

    Returns ``(writable views, segment handles to close after the run)``.
    Every failure is a 400 — a bad handoff must never crash a replica —
    and any segments attached before the failure are released.
    """
    if not isinstance(raw, list) or not raw:
        raise RequestError(
            400, "'shm_arrays' must be a non-empty list of segment specs"
        )
    arrays: dict[str, np.ndarray] = {}
    handles: list = []
    try:
        for item in raw:
            if not isinstance(item, dict):
                raise RequestError(400, "each shm_arrays entry must be an object")
            name = item.get("name")
            if not isinstance(name, str) or name not in proc.arrays:
                raise RequestError(400, f"unknown shm array {name!r}")
            if name in arrays:
                raise RequestError(400, f"duplicate shm array {name!r}")
            segment = item.get("segment")
            if not isinstance(segment, str) or not segment.startswith(
                SEGMENT_PREFIX
            ):
                raise RequestError(
                    400,
                    f"array {name!r}: segment must carry the "
                    f"{SEGMENT_PREFIX!r} prefix",
                )
            shape = item.get("shape")
            if not isinstance(shape, list) or not all(
                isinstance(d, int) and d >= 0 for d in shape
            ):
                raise RequestError(400, f"array {name!r}: bad shape {shape!r}")
            try:
                spec = ArraySpec(
                    name, segment, tuple(shape), str(item.get("dtype"))
                )
                view, handle = attach_array(spec)
            except RequestError:
                raise
            except Exception as exc:
                raise RequestError(
                    400,
                    f"cannot attach segment {segment!r} for array {name!r}: "
                    f"{exc} (the shm transport requires client and server "
                    "on the same host)",
                ) from exc
            handles.append(handle)
            if view.ndim != proc.arrays[name]:
                raise RequestError(
                    400,
                    f"array {name!r}: rank {proc.arrays[name]} expected, "
                    f"got {view.ndim}",
                )
            arrays[name] = view
        missing = set(proc.arrays) - set(arrays)
        if missing:
            raise RequestError(400, f"missing arrays: {sorted(missing)}")
    except BaseException:
        arrays.clear()
        for handle in handles:
            try:
                handle.close()
            except BufferError:  # pragma: no cover - defensive
                pass
        raise
    return arrays, handles


def _decode_scalars(raw, proc) -> dict[str, int | float]:
    raw = raw or {}
    if not isinstance(raw, dict):
        raise RequestError(400, "'scalars' must be an object of name -> value")
    out: dict[str, int | float] = {}
    for name in proc.scalars:
        if name not in raw:
            raise RequestError(400, f"missing scalar {name!r}")
        value = raw[name]
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if not isinstance(value, (int, float)):
            raise RequestError(400, f"scalar {name!r} must be a number")
        out[name] = value
    return out


class JsonRequestHandler(BaseHTTPRequestHandler):
    """JSON-in/JSON-out handler plumbing shared by server and router.

    Subclasses implement ``_route(method)``; this base provides response
    encoding, body decoding, error mapping (:class:`RequestError` → 4xx
    JSON, anything else → 500 with a traceback), quiet logging, and
    in-flight request accounting against the owning server (what
    :meth:`ReproServer.drain` waits on during graceful shutdown).
    """

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY on accepted sockets: responses are written as a few
    #: small segments (status line, headers, body); Nagle would park the
    #: last one behind the client's delayed ACK (~40ms per exchange).
    disable_nagle_algorithm = True

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send(
        self,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        # allow_nan=False: a non-finite float reaching this point is a
        # server bug (array payloads sentinel-encode NaN/Inf) — fail
        # loudly instead of emitting non-RFC JSON.
        data = json.dumps(payload, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)
        self.server.bump("bytes_out", len(data))

    def _send_bytes(self, status: int, data: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        self.server.bump("bytes_out", len(data))

    def _send_payload(self, payload: dict | bytes) -> None:
        """Send a handler result: wire frames as bytes, dicts as JSON."""
        if isinstance(payload, (bytes, bytearray)):
            self._send_bytes(200, bytes(payload), wire.CONTENT_TYPE)
        else:
            self._send(200, payload)

    def _read_body(self) -> bytes:
        self._body_read = True
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        self.server.bump("bytes_in", len(raw))
        return raw

    def _drain_request_body(self) -> None:
        """Keep-alive hygiene: a route that never read its request body
        (e.g. ``POST /cancel/<id>``) must not leave the bytes in the
        socket, where they would prefix the connection's next request."""
        if getattr(self, "_body_read", False):
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except (TypeError, ValueError):
            length = 0
        if length > 0:
            try:
                self.rfile.read(length)
            except OSError:  # pragma: no cover - client went away
                pass

    def _body(self) -> dict:
        raw = self._read_body()
        if not raw:
            raise RequestError(400, "empty request body (JSON expected)")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise RequestError(400, "JSON body must be an object")
        return body

    # -- transport negotiation --------------------------------------------
    def _content_type(self) -> str:
        raw = self.headers.get("Content-Type") or ""
        return raw.split(";", 1)[0].strip().lower()

    def _wire_request(self) -> bool:
        return self._content_type() == wire.CONTENT_TYPE

    def _wants_wire(self, default: bool) -> bool:
        """Response-encoding negotiation from the ``Accept`` header.

        An explicit wire Accept wins; an explicit JSON-only Accept turns
        a wire request into a JSON response; otherwise requests answer in
        the content type they arrived in (``default``).
        """
        accept = (self.headers.get("Accept") or "").lower()
        if wire.CONTENT_TYPE in accept:
            return True
        if "application/json" in accept:
            return False
        return default

    def _wire_body(self) -> tuple[dict, dict]:
        """Decode a binary request body: ``(body, zero-copy views)``."""
        raw = self._read_body()
        if not raw:
            raise RequestError(400, "empty request body (wire frame expected)")
        try:
            return wire.decode_frame(raw)
        except wire.WireFormatError as exc:
            raise RequestError(400, f"bad wire frame: {exc}") from exc

    def _route(self, method: str) -> None:
        raise NotImplementedError

    def _dispatch(self, method: str) -> None:
        server = self.server
        server.bump("requests")
        server.begin_request()
        self._body_read = False
        try:
            self._route(method)
        except RequestError as exc:
            server.bump("errors")
            self._send(
                exc.status, {"error": str(exc)}, headers=exc.headers
            )
        except Exception:
            server.bump("errors")
            import traceback

            self._send(
                500,
                {"error": "internal error", "detail": traceback.format_exc()},
            )
        finally:
            self._drain_request_body()
            server.end_request()

    def do_GET(self):  # noqa: N802 - stdlib name
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - stdlib name
        self._dispatch("POST")


class _Handler(JsonRequestHandler):
    """Routes requests to the server's handle_* methods."""

    def _route(self, method: str) -> None:
        server: ReproServer = self.server  # type: ignore[assignment]
        if method == "GET" and self.path == "/healthz":
            self._send(200, {"status": "ok", **server.server_metrics()})
        elif method == "GET" and self.path == "/metrics":
            self._send(
                200,
                metrics_snapshot(
                    cache=server.cache, server=server.server_metrics()
                ),
            )
        elif method == "POST" and self.path == "/compile":
            self._send(200, server.handle_compile(self._body()))
        elif method == "POST" and self.path == "/run":
            if self._wire_request():
                body, views = self._wire_body()
                out = server.handle_run(
                    body,
                    wire_views=views,
                    want_wire=self._wants_wire(default=True),
                )
            else:
                out = server.handle_run(
                    self._body(), want_wire=self._wants_wire(default=False)
                )
            self._send_payload(out)
        elif method == "POST" and self.path == "/lint":
            self._send(200, server.handle_lint(self._body()))
        else:
            raise RequestError(404, f"no route {method} {self.path}")


def serve_background(
    host: str = "127.0.0.1",
    port: int = 0,
    cache: object = "default",
    max_pools: int = 4,
) -> tuple[ReproServer, threading.Thread]:
    """Start a server on a daemon thread (tests, selfcheck, notebooks).

    Returns ``(server, thread)``; ``server.port`` carries the bound port.
    Stop with ``server.shutdown(); server.close()``.
    """
    server = ReproServer((host, port), cache=cache, max_pools=max_pools)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread


def install_shutdown_handlers(server: ReproServer) -> threading.Event:
    """SIGTERM/SIGINT → stop accepting work (must run on the main thread).

    The handler fires ``server.shutdown()`` from a helper thread (calling
    it inline would deadlock: the signal interrupts the main thread, which
    is the one running ``serve_forever``).  The caller then drains
    in-flight requests with a deadline and closes the server — pool
    close unlinks every shm segment, so a SIGTERM mid-run leaks nothing.
    Returns the event the handler sets, for "was I signalled" checks.
    """
    stopping = threading.Event()

    def _handler(signum: int, frame: object) -> None:
        if stopping.is_set():  # second signal: give up on draining
            raise SystemExit(128 + signum)
        stopping.set()
        threading.Thread(
            target=server.shutdown, name="repro-shutdown", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _handler)
    signal.signal(signal.SIGINT, _handler)
    return stopping


def serve_main(argv: list[str] | None = None) -> int:
    """``python -m repro serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Start the repro compile-and-run HTTP server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="root of the artifact cache "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the on-disk artifact cache",
    )
    parser.add_argument(
        "--max-pools",
        type=int,
        default=4,
        help="warm worker pools kept resident (per workers x shape)",
    )
    parser.add_argument(
        "--drain-s",
        type=float,
        default=5.0,
        help="graceful-shutdown deadline: seconds to wait for in-flight "
        "requests after SIGTERM/SIGINT before force-closing pools",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.no_cache:
        cache: object = None
    elif args.cache_dir:
        from repro.cache import ArtifactCache

        cache = ArtifactCache(args.cache_dir)
    else:
        cache = "default"
    server = ReproServer(
        (args.host, args.port),
        cache=cache,
        max_pools=args.max_pools,
        verbose=args.verbose,
    )
    cache_line = (
        server.cache.root if server.cache is not None else "disabled"
    )
    print(
        f"repro serve: listening on http://{args.host}:{server.port} "
        f"(cache: {cache_line})",
        file=sys.stderr,
    )
    install_shutdown_handlers(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - handler normally wins
        pass
    drained = server.drain(args.drain_s)
    server.close(force=not drained)
    print(
        f"repro serve: shut down "
        f"({'drained' if drained else 'drain deadline hit, force-closed'})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_main())
