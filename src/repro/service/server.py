"""The compile-and-run HTTP server (stdlib ``ThreadingHTTPServer``).

One resident process serves many clients: compiles are content-addressed
through :mod:`repro.cache`, compiled programs stay registered in memory,
and mp-backend runs dispatch through warm per-(workers, shape) worker
pools guarded by per-pool locks (concurrent requests with the same shape
serialize on the pool; different shapes run in parallel).

Start it with ``python -m repro serve`` and talk JSON::

    curl -s localhost:8923/healthz
    curl -s -X POST localhost:8923/compile -d '{"source": "..."}'
    curl -s -X POST localhost:8923/run -d '{"key": "...", "arrays": {...}}'
    curl -s -X POST localhost:8923/lint -d '{"source": "..."}'
    curl -s localhost:8923/metrics

``POST /lint`` compiles the source exactly the way the mp backend would
and returns the chunk-safety verifier's structured findings
(:mod:`repro.lint`, schema ``repro.lint/v1``).  ``POST /run`` accepts a
``safety`` option (``"off"``/``"warn"``/``"enforce"``/``"speculate"``);
an enforce run whose every dispatch is refused degrades to the serial
build with the refusal reason in the response, and a speculate run
reports its per-dispatch dynamic outcomes (inspected / proven_dynamic /
speculated / committed / rolled_back) in a ``speculate`` block.

``POST /compile`` with ``backend="mp"`` also *pre-warms* the native chunk
kernels for every dispatchable loop of the program — gcc runs at compile
time, content-addressed into the artifact cache, so the first ``/run``
resolves each kernel as a cache hit instead of paying compile latency.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

import numpy as np

from repro.api import lower_and_coalesce
from repro.cache import artifact_key, resolve_cache
from repro.codegen.pygen import CompiledProcedure, compile_procedure
from repro.ir.printer import to_source
from repro.parallel.errors import ParallelDispatchError, ParallelError
from repro.parallel.observe import metrics_snapshot, record_fallback
from repro.parallel.pool import WorkerPool
from repro.parallel.runtime import run_parallel_procedure

DEFAULT_PORT = 8923

#: /compile options forwarded to the pipeline, with their defaults.
PIPELINE_OPTIONS = {
    "style": "ceiling",
    "depth": None,
    "distribute": True,
    "analyze": True,
    "triangular": False,
}


class RequestError(Exception):
    """A client error: maps to an HTTP 4xx with a JSON body.

    ``headers`` carries extra response headers — the cluster router uses
    it for ``Retry-After`` on 429 admission rejections.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


@dataclass
class CompiledProgram:
    """One compiled entry in the server's in-memory program registry."""

    key: str
    proc: object
    results: list
    backend: str
    from_cache: bool
    compile_s: float
    serial: CompiledProcedure
    cbackend: object | None = None  # CProcedure when backend == "c"
    #: Native chunk kernels compiled (or cache-hit) at /compile time for
    #: the mp backend, so the first /run never pays gcc latency.
    warm_kernels: int = 0

    def describe(self) -> dict:
        return {
            "key": self.key,
            "name": self.proc.name,
            "backend": self.backend,
            "cached": self.from_cache,
            "compile_s": round(self.compile_s, 6),
            "coalesced_nests": len(self.results),
            "loop_source": to_source(self.proc),
            "arrays": dict(self.proc.arrays),
            "scalars": list(self.proc.scalars),
            "warm_kernels": self.warm_kernels,
        }


class _WarmPool:
    """A resident worker fleet plus the lock that serializes runs on it."""

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self.lock = threading.Lock()


class PoolRegistry:
    """Warm :class:`WorkerPool` per (workers, array-shape signature).

    ``lease`` hands out a pool with its per-pool lock held, creating (and
    LRU-evicting idle) pools as needed.  A pool that breaks during a run
    is closed and dropped, so the next request with that shape gets a
    fresh fleet.
    """

    def __init__(self, max_pools: int = 4) -> None:
        self.max_pools = max_pools
        self._pools: OrderedDict[tuple, _WarmPool] = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def signature(workers: int, arrays: Mapping[str, np.ndarray]) -> tuple:
        return (
            workers,
            tuple(
                sorted(
                    (name, tuple(a.shape), str(a.dtype))
                    for name, a in arrays.items()
                )
            ),
        )

    def _evict_idle(self) -> None:
        """Drop oldest idle pools until under budget (soft cap: busy pools
        are never evicted, so a burst of distinct shapes may exceed it)."""
        for sig in list(self._pools):
            if len(self._pools) < self.max_pools:
                break
            wp = self._pools[sig]
            if wp.lock.acquire(blocking=False):
                try:
                    del self._pools[sig]
                    wp.pool.close()
                finally:
                    wp.lock.release()

    @contextlib.contextmanager
    def lease(self, workers: int, arrays: Mapping[str, np.ndarray]):
        sig = self.signature(workers, arrays)
        with self._lock:
            wp = self._pools.get(sig)
            if wp is None:
                self._evict_idle()
                wp = _WarmPool(WorkerPool(arrays, workers=workers))
                self._pools[sig] = wp
            else:
                self._pools.move_to_end(sig)
        with wp.lock:
            try:
                yield wp.pool
            finally:
                if wp.pool.broken:
                    with self._lock:
                        if self._pools.get(sig) is wp:
                            del self._pools[sig]
                    wp.pool.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)

    def close_all(self, force: bool = False) -> None:
        """Close every pool.  ``force=True`` (the shutdown-deadline path)
        waits only briefly for a busy pool's run to finish before closing
        it anyway — the run fails, but the shm segments get unlinked."""
        with self._lock:
            pools, self._pools = list(self._pools.values()), OrderedDict()
        for wp in pools:
            locked = wp.lock.acquire(timeout=2.0 if force else -1)
            try:
                wp.pool.close()
            finally:
                if locked:
                    wp.lock.release()


class ReproServer(ThreadingHTTPServer):
    """The resident compile-and-run service."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        cache: object = "default",
        max_pools: int = 4,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.cache = resolve_cache(cache)
        self.verbose = verbose
        self.programs: dict[str, CompiledProgram] = {}
        self.pools = PoolRegistry(max_pools)
        self.counters = {
            "requests": 0,
            "compiles": 0,
            "compile_cache_hits": 0,
            "runs": 0,
            "lints": 0,
            "errors": 0,
        }
        self._state_lock = threading.Lock()
        self._started = time.monotonic()
        self._inflight = 0

    # -- state ------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.server_address[1]

    def bump(self, name: str, by: int = 1) -> None:
        with self._state_lock:
            self.counters[name] += by

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    def begin_request(self) -> None:
        with self._state_lock:
            self._inflight += 1

    def end_request(self) -> None:
        with self._state_lock:
            self._inflight -= 1

    def drain(self, deadline_s: float = 5.0) -> bool:
        """Wait for in-flight requests to finish (post-``shutdown()``).

        The listener is already closed, so no new work arrives; this
        blocks until every handler thread has written its response or the
        deadline passes.  Returns True when fully drained.
        """
        t0 = time.monotonic()
        while self.inflight > 0 and time.monotonic() - t0 < deadline_s:
            time.sleep(0.02)
        return self.inflight == 0

    def server_metrics(self) -> dict:
        with self._state_lock:
            counters = dict(self.counters)
            inflight = self._inflight
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "programs": len(self.programs),
            "warm_pools": len(self.pools),
            "inflight": inflight,
            **counters,
        }

    def close(self, force: bool = False) -> None:
        self.pools.close_all(force=force)
        self.server_close()

    # -- request logic (handler methods delegate here) --------------------
    def handle_compile(self, body: dict) -> dict:
        source = body.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError(400, "body must carry a non-empty 'source'")
        frontend = body.get("frontend", "auto")
        if frontend == "auto":
            frontend = (
                "dsl" if source.lstrip().startswith("procedure") else "python"
            )
        if frontend not in ("python", "dsl"):
            raise RequestError(400, f"unknown frontend {frontend!r}")
        backend = body.get("backend", "python")
        if backend not in ("python", "mp", "c"):
            raise RequestError(400, f"unknown backend {backend!r}")
        options = dict(PIPELINE_OPTIONS)
        for name, value in (body.get("options") or {}).items():
            if name not in options:
                raise RequestError(400, f"unknown option {name!r}")
            options[name] = value

        t0 = time.perf_counter()
        try:
            _, proc, results, from_cache = lower_and_coalesce(
                source, frontend=frontend, cache=self.cache, **options
            )
        except RequestError:
            raise
        except Exception as exc:
            raise RequestError(400, f"compile failed: {exc}") from exc
        key = artifact_key(
            "program",
            source=source,
            frontend=frontend,
            backend=backend,
            **options,
        )
        cbackend = None
        if backend == "c":
            from repro.codegen.cload import (
                CCompileError,
                compile_c_procedure,
                have_compiler,
            )

            if not have_compiler():
                raise RequestError(400, "backend 'c' needs a gcc on PATH")
            try:
                cbackend = compile_c_procedure(proc, cache=self.cache)
            except CCompileError as exc:
                raise RequestError(400, f"C compile failed: {exc}") from exc
            from_cache = from_cache and cbackend.from_cache
        warm_kernels = 0
        if backend == "mp":
            warm_kernels = _prewarm_chunk_kernels(proc, self.cache)
        program = CompiledProgram(
            key=key,
            proc=proc,
            results=results,
            backend=backend,
            from_cache=from_cache,
            compile_s=time.perf_counter() - t0,
            serial=compile_procedure(proc),
            cbackend=cbackend,
            warm_kernels=warm_kernels,
        )
        with self._state_lock:
            self.programs[key] = program
        self.bump("compiles")
        if from_cache:
            self.bump("compile_cache_hits")
        return program.describe()

    def handle_lint(self, body: dict) -> dict:
        source = body.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError(400, "body must carry a non-empty 'source'")
        frontend = body.get("frontend", "auto")
        if frontend == "auto":
            frontend = (
                "dsl" if source.lstrip().startswith("procedure") else "python"
            )
        if frontend not in ("python", "dsl"):
            raise RequestError(400, f"unknown frontend {frontend!r}")
        options = {"style": "ceiling", "depth": None, "triangular": False}
        for name, value in (body.get("options") or {}).items():
            if name not in options:
                raise RequestError(400, f"unknown option {name!r}")
            options[name] = value
        from repro.lint.engine import lint_source

        try:
            report = lint_source(
                source, frontend=frontend, cache=self.cache, **options
            )
        except RequestError:
            raise
        except Exception as exc:
            raise RequestError(400, f"lint failed: {exc}") from exc
        self.bump("lints")
        return report.to_dict()

    def handle_run(self, body: dict) -> dict:
        key = body.get("key")
        program = self.programs.get(key) if isinstance(key, str) else None
        if program is None:
            raise RequestError(
                404, f"unknown program key {key!r} (POST /compile first)"
            )
        proc = program.proc
        arrays = _decode_arrays(body.get("arrays"), proc)
        scalars = _decode_scalars(body.get("scalars"), proc)
        backend = body.get("backend", program.backend)
        workers = int(body.get("workers", 4))
        policy = body.get("policy", "gss")
        chunk = body.get("chunk")
        claim_batch = body.get("claim_batch", "auto")
        if claim_batch != "auto":
            try:
                claim_batch = int(claim_batch)
            except (TypeError, ValueError) as exc:
                raise RequestError(
                    400,
                    f"claim_batch must be an int or 'auto' "
                    f"(got {claim_batch!r})",
                ) from exc
        chunk_lang = body.get("chunk_lang", "auto")
        if chunk_lang not in ("auto", "py", "c", "numpy"):
            raise RequestError(
                400,
                "chunk_lang must be 'auto', 'py', 'c', or 'numpy' "
                f"(got {chunk_lang!r})",
            )
        variants = body.get("variants")
        calibrate = body.get("calibrate")
        if calibrate is not None and not isinstance(calibrate, bool):
            raise RequestError(
                400, f"calibrate must be a boolean (got {calibrate!r})"
            )
        timeout = body.get("timeout")
        safety = body.get("safety")
        if safety is not None and safety not in (
            "off", "warn", "enforce", "speculate",
        ):
            raise RequestError(
                400,
                "safety must be 'off', 'warn', 'enforce', or 'speculate' "
                f"(got {safety!r})",
            )

        t0 = time.perf_counter()
        stats: dict = {}
        if backend == "mp":
            try:
                with self.pools.lease(workers, arrays) as pool:
                    result = run_parallel_procedure(
                        proc,
                        arrays,
                        scalars,
                        workers=workers,
                        policy=policy,
                        chunk=chunk,
                        claim_batch=claim_batch,
                        chunk_lang=chunk_lang,
                        timeout=timeout,
                        log_events=bool(body.get("log_events", False)),
                        pool=pool,
                        safety=safety,
                        variants=variants,
                        calibrate=calibrate,
                    )
                engine = "mp-pool"
                stats = {
                    "dispatches": len(result.dispatches),
                    "claims": result.claims,
                    "lock_ops": result.lock_ops,
                    "iterations": result.total_iterations,
                    "chunk_lang": result.chunk_lang,
                    "variants": result.variants,
                    "calibrations": result.calibrations,
                    "pinned_decisions": result.pinned_decisions,
                    "safety": result.safety_mode,
                    "blocked_dispatches": result.blocked_dispatches,
                }
                if result.safety_mode == "speculate":
                    stats["speculate"] = {
                        "inspected": result.inspected,
                        "proven_dynamic": result.proven_dynamic,
                        "speculated": result.speculated,
                        "committed": result.committed,
                        "rolled_back": result.rolled_back,
                        "certificates": [
                            c.to_dict() for c in result.certificates
                        ],
                    }
            except ParallelDispatchError as exc:
                # Nothing dispatchable (or safety=enforce refused every
                # dispatch): degrade exactly like backend="mp" in-process —
                # run the serial build, say why.
                record_fallback()
                program.serial.run(arrays, scalars)
                engine = "serial-fallback"
                stats = {"fallback_reason": f"{type(exc).__name__}: {exc}"}
            except (ParallelError, ValueError) as exc:
                raise RequestError(400, f"run failed: {exc}") from exc
        elif backend == "c" and program.cbackend is not None:
            program.cbackend.run(arrays, scalars)
            engine = "c"
        else:
            program.serial.run(arrays, scalars)
            engine = "serial"
        self.bump("runs")
        return {
            "key": key,
            "engine": engine,
            "wall_s": round(time.perf_counter() - t0, 6),
            **stats,
            "arrays": {name: a.tolist() for name, a in arrays.items()},
        }


def _prewarm_chunk_kernels(proc, cache) -> int:
    """Build the variant farm for every dispatchable loop at /compile time.

    Compiles every available C variant (and generates the numpy chunk)
    with the integer-scalar type signature (what JSON-decoded scalar
    payloads resolve to), content-addressed into the artifact cache — so
    the first /run's kernel resolution is a cache hit, never a compile,
    whichever variant calibration later picks.  Returns the number of
    builds warmed; failures (no compiler, ineligible shape) warm nothing
    and cost one attempt each.
    """
    from repro.parallel.runtime import _dispatchable_loops, _DispatchCaches
    from repro.tuning.variants import available_variants

    caches = _DispatchCaches()
    caches.store = cache
    env = {name: 1 for name in proc.scalars}
    warmed = 0
    for lp in _dispatchable_loops(proc.body):
        for variant in available_variants("auto"):
            if variant.lang == "c":
                built = caches.chunk_kernel(proc, lp, (), env, variant=variant)
            elif variant.lang == "numpy":
                built = caches.numpy_chunk(proc, lp, ())
            else:
                continue  # the py chunk needs no warming
            if built is not None:
                warmed += 1
    return warmed


def _decode_arrays(raw, proc) -> dict[str, np.ndarray]:
    """JSON array payload → float64 ndarrays matching the procedure."""
    raw = raw or {}
    if not isinstance(raw, dict):
        raise RequestError(400, "'arrays' must be an object of name -> data")
    out: dict[str, np.ndarray] = {}
    for name, rank in proc.arrays.items():
        if name not in raw:
            raise RequestError(400, f"missing array {name!r}")
        try:
            arr = np.asarray(raw[name], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise RequestError(400, f"array {name!r}: {exc}") from exc
        if arr.ndim != rank:
            raise RequestError(
                400, f"array {name!r}: rank {rank} expected, got {arr.ndim}"
            )
        out[name] = np.ascontiguousarray(arr)
    extra = set(raw) - set(out)
    if extra:
        raise RequestError(400, f"unknown arrays: {sorted(extra)}")
    return out


def _decode_scalars(raw, proc) -> dict[str, int | float]:
    raw = raw or {}
    if not isinstance(raw, dict):
        raise RequestError(400, "'scalars' must be an object of name -> value")
    out: dict[str, int | float] = {}
    for name in proc.scalars:
        if name not in raw:
            raise RequestError(400, f"missing scalar {name!r}")
        value = raw[name]
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if not isinstance(value, (int, float)):
            raise RequestError(400, f"scalar {name!r} must be a number")
        out[name] = value
    return out


class JsonRequestHandler(BaseHTTPRequestHandler):
    """JSON-in/JSON-out handler plumbing shared by server and router.

    Subclasses implement ``_route(method)``; this base provides response
    encoding, body decoding, error mapping (:class:`RequestError` → 4xx
    JSON, anything else → 500 with a traceback), quiet logging, and
    in-flight request accounting against the owning server (what
    :meth:`ReproServer.drain` waits on during graceful shutdown).
    """

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send(
        self,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError(400, "empty request body (JSON expected)")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise RequestError(400, "JSON body must be an object")
        return body

    def _route(self, method: str) -> None:
        raise NotImplementedError

    def _dispatch(self, method: str) -> None:
        server = self.server
        server.bump("requests")
        server.begin_request()
        try:
            self._route(method)
        except RequestError as exc:
            server.bump("errors")
            self._send(
                exc.status, {"error": str(exc)}, headers=exc.headers
            )
        except Exception:
            server.bump("errors")
            import traceback

            self._send(
                500,
                {"error": "internal error", "detail": traceback.format_exc()},
            )
        finally:
            server.end_request()

    def do_GET(self):  # noqa: N802 - stdlib name
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - stdlib name
        self._dispatch("POST")


class _Handler(JsonRequestHandler):
    """Routes requests to the server's handle_* methods."""

    def _route(self, method: str) -> None:
        server: ReproServer = self.server  # type: ignore[assignment]
        if method == "GET" and self.path == "/healthz":
            self._send(200, {"status": "ok", **server.server_metrics()})
        elif method == "GET" and self.path == "/metrics":
            self._send(
                200,
                metrics_snapshot(
                    cache=server.cache, server=server.server_metrics()
                ),
            )
        elif method == "POST" and self.path == "/compile":
            self._send(200, server.handle_compile(self._body()))
        elif method == "POST" and self.path == "/run":
            self._send(200, server.handle_run(self._body()))
        elif method == "POST" and self.path == "/lint":
            self._send(200, server.handle_lint(self._body()))
        else:
            raise RequestError(404, f"no route {method} {self.path}")


def serve_background(
    host: str = "127.0.0.1",
    port: int = 0,
    cache: object = "default",
    max_pools: int = 4,
) -> tuple[ReproServer, threading.Thread]:
    """Start a server on a daemon thread (tests, selfcheck, notebooks).

    Returns ``(server, thread)``; ``server.port`` carries the bound port.
    Stop with ``server.shutdown(); server.close()``.
    """
    server = ReproServer((host, port), cache=cache, max_pools=max_pools)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread


def install_shutdown_handlers(server: ReproServer) -> threading.Event:
    """SIGTERM/SIGINT → stop accepting work (must run on the main thread).

    The handler fires ``server.shutdown()`` from a helper thread (calling
    it inline would deadlock: the signal interrupts the main thread, which
    is the one running ``serve_forever``).  The caller then drains
    in-flight requests with a deadline and closes the server — pool
    close unlinks every shm segment, so a SIGTERM mid-run leaks nothing.
    Returns the event the handler sets, for "was I signalled" checks.
    """
    stopping = threading.Event()

    def _handler(signum: int, frame: object) -> None:
        if stopping.is_set():  # second signal: give up on draining
            raise SystemExit(128 + signum)
        stopping.set()
        threading.Thread(
            target=server.shutdown, name="repro-shutdown", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _handler)
    signal.signal(signal.SIGINT, _handler)
    return stopping


def serve_main(argv: list[str] | None = None) -> int:
    """``python -m repro serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Start the repro compile-and-run HTTP server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="root of the artifact cache "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the on-disk artifact cache",
    )
    parser.add_argument(
        "--max-pools",
        type=int,
        default=4,
        help="warm worker pools kept resident (per workers x shape)",
    )
    parser.add_argument(
        "--drain-s",
        type=float,
        default=5.0,
        help="graceful-shutdown deadline: seconds to wait for in-flight "
        "requests after SIGTERM/SIGINT before force-closing pools",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.no_cache:
        cache: object = None
    elif args.cache_dir:
        from repro.cache import ArtifactCache

        cache = ArtifactCache(args.cache_dir)
    else:
        cache = "default"
    server = ReproServer(
        (args.host, args.port),
        cache=cache,
        max_pools=args.max_pools,
        verbose=args.verbose,
    )
    cache_line = (
        server.cache.root if server.cache is not None else "disabled"
    )
    print(
        f"repro serve: listening on http://{args.host}:{server.port} "
        f"(cache: {cache_line})",
        file=sys.stderr,
    )
    install_shutdown_handlers(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - handler normally wins
        pass
    drained = server.drain(args.drain_s)
    server.close(force=not drained)
    print(
        f"repro serve: shut down "
        f"({'drained' if drained else 'drain deadline hit, force-closed'})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_main())
