"""repro.service — the long-lived compile-and-run server.

The paper moves scheduling work into a one-time compile step; this package
moves the one-time compile step out of the request path entirely.  A
resident process (``python -m repro serve``) holds:

* the content-addressed artifact cache (:mod:`repro.cache`) — lowered IR,
  transform results, and compiled libraries survive across requests *and*
  across server restarts;
* a registry of compiled programs keyed by content hash, so ``POST /run``
  never recompiles;
* warm :class:`repro.parallel.pool.WorkerPool` fleets keyed by
  (workers, array shapes), so an mp run is a shared-memory load plus job
  messages to already-running workers — no forking on the request path.

Endpoints (JSON over HTTP, stdlib ``http.server`` only):

* ``POST /compile`` — source (restricted Python or the mini-language) +
  options → program key (+ whether the artifact cache served it);
* ``POST /run`` — program key + arrays/scalars → result arrays + measured
  dispatch statistics (accepts a ``safety`` mode; an enforce run whose
  every dispatch is refused degrades to the serial build with the reason).
  Arrays travel over one of three transports: JSON lists (default,
  dtype-tagged), the :mod:`repro.wire` binary frame, or a same-host
  shared-memory handoff;
* ``POST /lint`` — source → chunk-safety verdicts and findings
  (:mod:`repro.lint`, schema ``repro.lint/v1``);
* ``GET /healthz`` — liveness + resident-state summary;
* ``GET /metrics`` — the unified :func:`repro.parallel.observe.metrics_snapshot`
  document (cache + dispatch + server counters).

:class:`repro.service.client.ServiceClient` is the in-process client used
by the tests, the CI smoke step, and scripts.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproServer, serve_background, serve_main

__all__ = [
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "serve_background",
    "serve_main",
]
