"""End-to-end service smoke check (the CI gate).

``python -m repro.service.selfcheck`` starts a server on an ephemeral port
with a throwaway cache, then drives it through the client exactly like a
real deployment: health check, compile a kernel twice (the second must be
served from the artifact cache and, with a compiler on PATH, must report
pre-warmed native chunk kernels), run it on the mp backend — once with
``chunk_lang="c"`` when a compiler is available (asserting the native
kernel path actually engaged) — run it twice more with
``calibrate=True`` (asserting the first served run calibrates and pins a
variant decision and the warm second run performs zero calibration while
reporting its pinned variant) — verify every served result
bit-for-bit against a local serial run, round-trip ``POST /lint``
on a clean kernel and a seeded-race program (asserting the RACE001
verdict comes back), and round-trip a ``safety="speculate"`` run on a
conflicting histogram (asserting the speculation rolled back and the
served arrays match the serial semantics exactly).

It then stands up a two-replica *cluster* over one shared artifact
store and drives the front door: a synchronous routed run (verified
bit-for-bit), the async job protocol (submit → poll → result, plus a
cancel while the dispatchers are paused), and the shared-store warm
path — a program compiled and calibrated directly on replica A must be
a cache hit on replica B, whose calibrated run performs zero
re-calibration and reports the pinned variant decision.  Exits nonzero
on any failure, so CI can gate on it directly.
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

KERNEL = """
def scale2d(A, B, n, m):
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            B[i, j] = 2.0 * A[i, j] + 1.0
"""

RACY = """
procedure chase(A[1]; n)
  doall i = 2, n
    A(i) := A(i - 1) + 1.0
  end
end
"""

HISTOGRAM = """
procedure histogram(H[1], K[1]; n)
  doall i = 1, n
    H(int(K(i))) := H(int(K(i))) + 1.0
  end
end
"""

N = M = 24


def main() -> int:
    from repro.api import transform_function
    from repro.cache import ArtifactCache
    from repro.service.client import ServiceClient
    from repro.service.server import serve_background

    with tempfile.TemporaryDirectory(prefix="repro_selfcheck_") as tmp:
        server, thread = serve_background(cache=ArtifactCache(tmp))
        try:
            client = ServiceClient(port=server.port)

            health = client.healthz()
            assert health["status"] == "ok", health

            from repro.codegen.cload import have_compiler

            first = client.compile(KERNEL, backend="mp")
            assert not first["cached"], first
            if have_compiler():
                # /compile pre-warms the native chunk kernel, so the
                # first /run resolves it from the artifact cache.
                assert first["warm_kernels"] >= 1, first
            second = client.compile(KERNEL, backend="mp")
            assert second["cached"], second
            assert second["key"] == first["key"]

            rng = np.random.default_rng(7)
            A = rng.random((N + 1, M + 1))
            B = np.zeros_like(A)
            out = client.run(
                first["key"], {"A": A, "B": B},
                {"n": N, "m": M}, workers=2, backend="mp",
            )
            assert out["engine"] == "mp-pool", out["engine"]

            expected_B = np.zeros_like(A)
            local = transform_function(KERNEL, cache=None)
            local(A, expected_B, N, M)
            assert np.array_equal(out["arrays"]["B"], expected_B), (
                "served mp result diverged from local serial"
            )

            lang = "py"
            if have_compiler():
                B2 = np.zeros_like(A)
                native = client.run(
                    first["key"], {"A": A, "B": B2},
                    {"n": N, "m": M}, workers=2, backend="mp",
                    chunk_lang="c",
                )
                assert native["chunk_lang"] == "c", native
                assert np.array_equal(native["arrays"]["B"], expected_B), (
                    "served native-chunk result diverged from local serial"
                )
                lang = native["chunk_lang"]

            # Calibrated dispatch round trip: the first unit-policy run
            # measures (or loads a previously pinned decision); the warm
            # second run must re-measure nothing and still report the
            # pinned variant it dispatched.
            B3 = np.zeros_like(A)
            cal = client.run(
                first["key"], {"A": A, "B": B3}, {"n": N, "m": M},
                workers=2, backend="mp", policy="unit", calibrate=True,
            )
            assert cal["calibrations"] >= 1 or cal["pinned_decisions"] >= 1, (
                cal
            )
            assert cal["variants"], cal
            assert np.array_equal(cal["arrays"]["B"], expected_B), (
                "served calibrated result diverged from local serial"
            )
            B4 = np.zeros_like(A)
            warm = client.run(
                first["key"], {"A": A, "B": B4}, {"n": N, "m": M},
                workers=2, backend="mp", policy="unit", calibrate=True,
            )
            assert warm["calibrations"] == 0, warm
            assert warm["pinned_decisions"] >= 1, warm
            assert warm["variants"] == cal["variants"], warm
            assert np.array_equal(warm["arrays"]["B"], expected_B)

            # safety=speculate round trip: duplicate keys force a
            # cross-chunk conflict, the speculation must roll back, and
            # the served result must equal the serial semantics exactly.
            hist = client.compile(HISTOGRAM, backend="mp", analyze=False)
            hn = 48
            H = np.zeros(9)
            K = np.zeros(hn + 1)
            K[1:] = rng.integers(1, 9, size=hn).astype(float)
            spec = client.run(
                hist["key"], {"H": H, "K": K}, {"n": hn},
                workers=2, backend="mp", policy="static",
                safety="speculate",
            )
            assert spec["engine"] == "mp-pool", spec["engine"]
            sblock = spec.get("speculate")
            assert sblock and sblock["rolled_back"] == 1, sblock
            expected_H = H.copy()
            for i in range(1, hn + 1):
                expected_H[int(K[i])] += 1.0
            assert np.array_equal(spec["arrays"]["H"], expected_H), (
                "served speculate result diverged from serial semantics"
            )

            # Wire transport round trip: binary frames both directions,
            # decoded zero-copy, bit-identical to the JSON-served result.
            wired = client.run(
                first["key"], {"A": A, "B": np.zeros_like(A)},
                {"n": N, "m": M}, workers=2, backend="mp",
                transport="wire",
            )
            assert wired["transport"] == "wire", wired
            assert np.array_equal(wired["arrays"]["B"], expected_B), (
                "served wire result diverged from local serial"
            )

            # Same-host shm handoff: the server computes in place inside
            # the client's segments; the response carries no array bytes.
            assert client.host_compatible(), "lone server must share host"
            shm_out = client.run(
                first["key"], {"A": A, "B": np.zeros_like(A)},
                {"n": N, "m": M}, workers=2, backend="mp",
                transport="shm",
            )
            assert shm_out["transport"] == "shm", shm_out
            assert np.array_equal(shm_out["arrays"]["B"], expected_B), (
                "served shm result diverged from local serial"
            )

            clean = client.lint(KERNEL)
            assert clean["schema"] == "repro.lint/v1", clean
            assert clean["ok"] and not clean["findings"], clean
            dirty = client.lint(RACY)
            assert not dirty["ok"], dirty
            codes = {f["rule"] for f in dirty["findings"]}
            assert "RACE001" in codes, dirty["findings"]

            metrics = client.metrics()
            assert metrics["schema"] == "repro.metrics/v1", metrics
            assert metrics["server"]["lints"] >= 2, metrics["server"]
            assert metrics["cache"]["hits"] >= 1, metrics["cache"]
            assert metrics["server"]["runs"] >= 1, metrics["server"]
            assert "chunk_lang" in metrics["dispatch"], metrics["dispatch"]
            if have_compiler():
                assert metrics["dispatch"]["chunk_lang"]["c"] >= 1, (
                    metrics["dispatch"]
                )
            assert metrics["dispatch"]["speculate"]["rolled_back"] >= 1, (
                metrics["dispatch"]
            )
            vstats = metrics["dispatch"]["variants"]
            assert vstats["wins"], vstats
            assert vstats["pinned_hits"] >= 1, vstats
            srv = metrics["server"]
            assert srv["bytes_in"] > 0 and srv["bytes_out"] > 0, srv
            tcounts = srv["transport"]
            assert tcounts["json"] >= 1, tcounts
            assert tcounts["wire"] >= 1, tcounts
            assert tcounts["shm"] >= 1, tcounts
            print(
                "service selfcheck OK: "
                f"compile_s={first['compile_s']:.4f} -> "
                f"{second['compile_s']:.4f} (cached), "
                f"warm_kernels={first['warm_kernels']}, "
                f"run engine={out['engine']} wall_s={out['wall_s']:.4f}, "
                f"chunk_lang={lang}, "
                f"calibrated variants={'+'.join(warm['variants'])} "
                f"(warm calibrations={warm['calibrations']}, "
                f"pinned={warm['pinned_decisions']}), "
                f"speculate rolled_back={sblock['rolled_back']}, "
                f"lint verdicts ok={clean['ok']}/dirty={not dirty['ok']}, "
                f"transports json={tcounts['json']} wire={tcounts['wire']} "
                f"shm={tcounts['shm']}, "
                f"cache hits={metrics['cache']['hits']}"
            )
        finally:
            server.shutdown()
            server.close()

    return _cluster_check()


def _cluster_check() -> int:
    """Two replicas, one shared store, the async job protocol."""
    from repro.api import transform_function
    from repro.cluster import start_cluster
    from repro.service.client import ServiceClient

    with tempfile.TemporaryDirectory(prefix="repro_selfcheck_cluster_") as tmp:
        router, supervisor, thread = start_cluster(
            replicas=2, cache_dir=tmp, drain_s=2.0, sync_timeout_s=120.0
        )
        try:
            front = ServiceClient(
                port=router.port, retries=2, backoff_s=0.02
            )
            health = front.healthz()
            assert health["status"] == "ok", health
            assert health["fleet"]["alive"] == 2, health

            # Shared-store warm path: compile + calibrate on replica A,
            # then replica B must hit the store cold-process-warm-cache.
            replica_a, replica_b = supervisor.handles
            first = replica_a.client.compile(KERNEL, backend="mp")
            assert not first["cached"], first
            rng = np.random.default_rng(13)
            A = rng.random((N + 1, M + 1))
            expected_B = np.zeros_like(A)
            transform_function(KERNEL, cache=None)(A, expected_B, N, M)
            cal = replica_a.client.run(
                first["key"], {"A": A, "B": np.zeros_like(A)},
                {"n": N, "m": M},
                workers=2, backend="mp", policy="unit", calibrate=True,
            )
            assert cal["engine"] == "mp-pool", cal["engine"]
            assert np.array_equal(cal["arrays"]["B"], expected_B)
            second = replica_b.client.compile(KERNEL, backend="mp")
            assert second["cached"], second
            assert second["key"] == first["key"]
            warm = replica_b.client.run(
                first["key"], {"A": A, "B": np.zeros_like(A)},
                {"n": N, "m": M},
                workers=2, backend="mp", policy="unit", calibrate=True,
            )
            assert warm["calibrations"] == 0, warm
            assert warm["pinned_decisions"] >= 1, warm
            assert np.array_equal(warm["arrays"]["B"], expected_B), (
                "replica B's warm calibrated run diverged"
            )

            # Synchronous routed run through the front door.
            routed = front.run(
                first["key"], {"A": A, "B": np.zeros_like(A)},
                {"n": N, "m": M},
            )
            assert np.array_equal(routed["arrays"]["B"], expected_B), (
                "routed result diverged from local serial"
            )
            assert routed["cluster"]["replica"] in (0, 1), routed

            # Wire pass-through: a binary run through the front door (the
            # router forwards the frame opaquely) — then the same key
            # again, which must stick to the warm replica with zero
            # recalibration.
            wired = front.run(
                first["key"], {"A": A, "B": np.zeros_like(A)},
                {"n": N, "m": M},
                workers=2, backend="mp", policy="unit", calibrate=True,
                transport="wire",
            )
            assert np.array_equal(wired["arrays"]["B"], expected_B), (
                "routed wire result diverged from local serial"
            )
            sticky = front.run(
                first["key"], {"A": A, "B": np.zeros_like(A)},
                {"n": N, "m": M},
                workers=2, backend="mp", policy="unit", calibrate=True,
                transport="wire",
            )
            assert (
                sticky["cluster"]["replica"] == wired["cluster"]["replica"]
            ), (wired["cluster"], sticky["cluster"])
            assert sticky["calibrations"] == 0, sticky
            assert router.counters["sticky_hits"] >= 1, router.counters

            # Async job protocol: submit → poll → result.
            job = front.submit(
                "run",
                **ServiceClient.run_body(
                    first["key"], {"A": A, "B": np.zeros_like(A)},
                    {"n": N, "m": M},
                ),
            )
            assert job["state"] in ("queued", "running"), job
            out = front.wait(job["job_id"], timeout=60)
            assert out["state"] == "done", out
            assert np.array_equal(
                out["result"]["arrays"]["B"], expected_B
            ), "async job result diverged from local serial"

            # Cancel: pause dispatch so the job stays queued.
            router.pause()
            parked = front.submit("lint", source=KERNEL)
            cancelled = front.cancel(parked["job_id"])
            assert cancelled["state"] == "cancelled", cancelled
            router.resume()

            metrics = front.metrics()
            jobs = metrics["jobs"]
            assert jobs["submitted"] >= 3, jobs
            assert jobs["completed"] >= 2, jobs
            assert jobs["cancelled"] >= 1, jobs
            assert len(metrics["cluster"]["per_replica"]) == 2, metrics
            assert metrics["cache"]["entries"] >= 1, metrics["cache"]
            transports = metrics["cluster"]["transport"]
            assert transports["wire"] >= 2, transports
            assert transports["json"] >= 1, transports
            assert metrics["server"]["bytes_in"] > 0, metrics["server"]
            assert metrics["server"]["bytes_out"] > 0, metrics["server"]
            print(
                "cluster selfcheck OK: 2 replicas on one store, "
                f"routed run via replica {routed['cluster']['replica']}, "
                f"wire pass-through via replica "
                f"{wired['cluster']['replica']} "
                f"(sticky_hits={router.counters['sticky_hits']}, "
                f"warm calibrations={sticky['calibrations']}), "
                f"warm cross-replica calibrations={warm['calibrations']} "
                f"pinned={warm['pinned_decisions']}, "
                f"jobs submitted={jobs['submitted']} "
                f"completed={jobs['completed']} "
                f"cancelled={jobs['cancelled']}"
            )
        finally:
            router.shutdown()
            router.close()
            supervisor.stop()
            thread.join(timeout=10)
    return 0


if __name__ == "__main__":
    sys.exit(main())
