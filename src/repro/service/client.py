"""A small stdlib client for the compile-and-run server and the cluster.

Used by the tests, the CI smoke step, the load-test harness, and anything
that wants to talk to ``python -m repro serve`` / ``python -m repro
cluster`` without hand-rolling HTTP::

    from repro.service.client import ServiceClient

    client = ServiceClient(port=8923)
    program = client.compile(SOURCE, backend="mp")
    out = client.run(program["key"], {"A": A, "B": B}, {"n": 64, "m": 64})
    out["arrays"]["B"]          # numpy array, computed by the server

Every client keeps one pooled keep-alive ``http.client`` connection per
calling thread (HTTP/1.1 persistent connections — no per-request TCP
handshake); a stale pooled socket (server restarted between requests) is
re-opened transparently.

Three array transports are supported, selected per client
(``ServiceClient(..., transport="wire")``) or per call
(``client.run(..., transport="shm")``):

- ``"json"`` (default) — nested lists with ``array_dtypes`` tags, so the
  caller's dtype survives the round trip; NaN/Inf are sentinel-encoded.
- ``"wire"`` — the :mod:`repro.wire` binary frame
  (``application/x-repro-wire``): no text encode/parse, bit-exact arrays.
  Result arrays come back as zero-copy read-only views over the response
  buffer; copy before mutating.
- ``"shm"`` — same-host fast path: arrays are staged into shared-memory
  segments the server attaches directly, and the response carries only
  segment names — zero array bytes on the socket.  Gated on the server's
  ``host_token`` matching this machine.

Against a cluster front door the same client also speaks the async job
protocol::

    job = client.submit("run", key=program["key"], arrays=..., scalars=...)
    state = client.poll(job["job_id"])
    out = client.result(job["job_id"])       # once state is "done"

Transient connection failures (replica restarting, listener backlog full,
connection reset mid-crash) are retried with exponential backoff + full
jitter when the client is built with ``retries > 0``; HTTP error
*responses* (4xx/5xx) are never retried here — the cluster router owns
job-level retry semantics.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import urllib.error
from typing import Callable, Mapping

import numpy as np

from repro import wire

#: Exception types treated as transient transport failures (safe to retry:
#: the request never produced a response).  ``OSError`` covers connection
#: refused/reset/timeout at the socket layer; ``HTTPException`` covers a
#: torn response on a reused keep-alive connection (``BadStatusLine``,
#: ``RemoteDisconnected``, ``IncompleteRead``, ``CannotSendRequest``).
TRANSIENT_ERRORS = (
    urllib.error.URLError,
    ConnectionError,
    TimeoutError,
    OSError,
    http.client.HTTPException,
)


class _NoDelayConnection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle's algorithm disabled.

    Request/response exchanges here are latency-bound RPCs; letting the
    kernel hold the final small segment of a request behind the peer's
    delayed ACK adds a flat ~40ms to every call."""

    def connect(self) -> None:
        super().connect()
        try:
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP socket family
            pass


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded body.

    ``retry_after`` is the parsed ``Retry-After`` header in seconds when
    the server sent one (the cluster's 429 admission rejections do).
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


def _coerce_arrays(
    arrays: Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """C-contiguous ndarrays, preserving real ndarray dtypes.

    Plain Python nested lists keep their historical float64 coercion (the
    service's numeric default); an actual ndarray travels in the caller's
    dtype on every transport.
    """
    out: dict[str, np.ndarray] = {}
    for name, a in arrays.items():
        if isinstance(a, np.ndarray):
            out[name] = np.ascontiguousarray(a)
        else:
            out[name] = np.ascontiguousarray(np.asarray(a, dtype=np.float64))
    return out


class ServiceClient:
    """Blocking client bound to one server address.

    Thread-safe: the connection pool is per-thread (``threading.local``),
    so one client can be shared by concurrent request threads (the
    concurrency tests and the load harness do).

    ``retries``/``backoff_s``/``backoff_max_s``/``retry_deadline_s``
    configure transient-connection retry: attempt ``n`` sleeps
    ``min(backoff_max_s, backoff_s * 2**n)`` scaled by full jitter, and
    the whole retry loop gives up once ``retry_deadline_s`` has elapsed
    (or the attempts run out, whichever is first).

    ``transport`` sets the default array transport for :meth:`run` /
    :meth:`submit_run` (``"json"``/``"wire"``/``"shm"``); every call can
    override it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8923,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        retry_deadline_s: float | None = None,
        transport: str = "json",
    ) -> None:
        if transport not in ("json", "wire", "shm"):
            raise ValueError(f"unknown transport {transport!r}")
        self.host = host
        self.port = port
        self.base = f"http://{host}:{port}"
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.retry_deadline_s = retry_deadline_s
        self.transport = transport
        self._local = threading.local()
        self._host_ok: bool | None = None

    # -- pooled transport --------------------------------------------------
    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = _NoDelayConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def _drop_conn(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except Exception:  # pragma: no cover - defensive
                pass

    def close(self) -> None:
        """Close this thread's pooled connection (idempotent)."""
        self._drop_conn()

    def _raw_once(
        self,
        method: str,
        path: str,
        data: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, object, bytes]:
        """One HTTP exchange on the pooled keep-alive connection.

        A failure on a *reused* socket gets one immediate retry on a
        fresh connection — the server may simply have closed an idle
        keep-alive between our requests, which is not an error worth a
        backoff cycle.  A failure on a fresh connection propagates to the
        caller's retry policy.
        """
        conn = self._conn()
        reused = conn.sock is not None
        try:
            conn.request(method, path, body=data, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except TRANSIENT_ERRORS:
            self._drop_conn()
            if not reused:
                raise
            conn = self._conn()
            try:
                conn.request(method, path, body=data, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
            except TRANSIENT_ERRORS:
                self._drop_conn()
                raise
        if resp.will_close:
            self._drop_conn()
        return resp.status, resp.headers, raw

    def request_bytes(
        self,
        method: str,
        path: str,
        data: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[object, bytes]:
        """One request/response, raw bytes in and out.

        Returns ``(response headers, body bytes)``; a 4xx/5xx raises
        :class:`ServiceError` with the decoded JSON error body.  This is
        the opaque-forwarding primitive the cluster router uses to pass
        wire frames through without materializing arrays.
        """
        status, rheaders, raw = self._raw_once(
            method, path, data, dict(headers or {})
        )
        if status >= 400:
            ctype = (rheaders.get("Content-Type") or "").split(";")[0].strip()
            body: dict
            if ctype == "application/json":
                try:
                    decoded = json.loads(raw)
                    body = (
                        decoded
                        if isinstance(decoded, dict)
                        else {"error": decoded}
                    )
                except ValueError:
                    body = {"error": raw.decode("utf-8", "replace")[:500]}
            else:
                body = {"error": raw.decode("utf-8", "replace")[:500]}
            try:
                retry_after = float(rheaders.get("Retry-After"))
            except (TypeError, ValueError):
                retry_after = None
            raise ServiceError(status, body, retry_after)
        return rheaders, raw

    def _request_once(
        self, method: str, path: str, payload: dict | None
    ) -> dict:
        data = (
            None
            if payload is None
            else json.dumps(payload, allow_nan=False).encode("utf-8")
        )
        _, raw = self.request_bytes(
            method, path, data, {"Content-Type": "application/json"}
        )
        return json.loads(raw)

    def _with_retry(self, attempt_fn: Callable):
        t0 = time.monotonic()
        attempt = 0
        while True:
            try:
                return attempt_fn()
            except ServiceError:
                raise  # the server answered; job-level retry is not ours
            except TRANSIENT_ERRORS:
                elapsed = time.monotonic() - t0
                out_of_time = (
                    self.retry_deadline_s is not None
                    and elapsed >= self.retry_deadline_s
                )
                if attempt >= self.retries or out_of_time:
                    raise
                sleep = min(
                    self.backoff_max_s, self.backoff_s * (2**attempt)
                ) * random.uniform(0.5, 1.0)
                if self.retry_deadline_s is not None:
                    sleep = min(
                        sleep,
                        max(0.0, self.retry_deadline_s - elapsed),
                    )
                time.sleep(sleep)
                attempt += 1

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        return self._with_retry(
            lambda: self._request_once(method, path, payload)
        )

    def _request_raw(
        self,
        method: str,
        path: str,
        data: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[object, bytes]:
        return self._with_retry(
            lambda: self.request_bytes(method, path, data, headers)
        )

    # -- endpoints --------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def host_compatible(self) -> bool:
        """True when the server runs on this machine (shm handoff viable).

        Compares the server's ``/healthz`` ``host_token`` against our
        own; the answer is cached for the client's lifetime.
        """
        if self._host_ok is None:
            remote = self.healthz().get("host_token")
            self._host_ok = bool(remote) and remote == wire.host_token()
        return self._host_ok

    def compile(
        self,
        source: str,
        backend: str = "python",
        frontend: str = "auto",
        tenant: str | None = None,
        **options,
    ) -> dict:
        """POST /compile; returns the program description (with ``key``).

        ``tenant`` only matters against a cluster front door (quota
        accounting); a lone server ignores it.
        """
        body = {
            "source": source,
            "backend": backend,
            "frontend": frontend,
            "options": options,
        }
        if tenant is not None:
            body["tenant"] = tenant
        return self._request("POST", "/compile", body)

    def lint(
        self,
        source: str,
        frontend: str = "auto",
        tenant: str | None = None,
        **options,
    ) -> dict:
        """POST /lint; returns the structured chunk-safety report."""
        body = {"source": source, "frontend": frontend, "options": options}
        if tenant is not None:
            body["tenant"] = tenant
        return self._request("POST", "/lint", body)

    def run(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        transport: str | None = None,
        **options,
    ) -> dict:
        """POST /run over the selected transport; ``arrays`` come back as
        ndarrays in the dtype the server computed (wire-transport results
        are zero-copy read-only views; copy before mutating)."""
        transport = self.transport if transport is None else transport
        if transport == "wire":
            return self._run_wire(key, arrays, scalars, **options)
        if transport == "shm":
            return self._run_shm(key, arrays, scalars, **options)
        if transport != "json":
            raise ValueError(f"unknown transport {transport!r}")
        body = self.run_body(key, arrays, scalars, **options)
        return decode_run_result(self._request("POST", "/run", body))

    def _run_wire(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        **options,
    ) -> dict:
        body = {"key": key, "scalars": dict(scalars or {}), **options}
        frame = wire.encode_frame(body, _coerce_arrays(arrays))
        rheaders, raw = self._request_raw(
            "POST",
            "/run",
            frame,
            {"Content-Type": wire.CONTENT_TYPE, "Accept": wire.CONTENT_TYPE},
        )
        ctype = (rheaders.get("Content-Type") or "").split(";")[0].strip()
        if ctype == wire.CONTENT_TYPE:
            rbody, views = wire.decode_frame(raw)
            out = dict(rbody)
            out["arrays"] = dict(views)
            return out
        return decode_run_result(json.loads(raw))

    def _run_shm(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        **options,
    ) -> dict:
        if not self.host_compatible():
            raise RuntimeError(
                "shm transport requires client and server on the same host "
                "(the server's host_token does not match; use "
                "transport='wire' instead)"
            )
        from repro.parallel.shm import SharedArrayPool

        pool = SharedArrayPool(_coerce_arrays(arrays))
        try:
            body = {
                "key": key,
                "transport": "shm",
                "shm_arrays": [
                    {
                        "name": s.name,
                        "segment": s.segment,
                        "shape": list(s.shape),
                        "dtype": s.dtype,
                    }
                    for s in pool.specs()
                ],
                "scalars": dict(scalars or {}),
                **options,
            }
            out = self._request("POST", "/run", body)
            # The server ran in place on our segments; copy results out
            # before the pool unlinks them.
            out["arrays"] = {
                name: np.array(view) for name, view in pool.views.items()
            }
            return out
        finally:
            pool.close()

    # -- async job protocol (cluster front door) ---------------------------
    @staticmethod
    def run_body(
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        **options,
    ) -> dict:
        """The JSON body of a run request (shared by /run and /submit).

        Arrays carry ``array_dtypes`` tags so the caller's dtype survives
        the round trip, and non-finite floats are sentinel-encoded (the
        payload is strictly RFC JSON).
        """
        arrs = _coerce_arrays(arrays)
        return {
            "key": key,
            "arrays": {
                name: wire.jsonable_array(a) for name, a in arrs.items()
            },
            "array_dtypes": wire.dtype_tags(arrs),
            "scalars": dict(scalars or {}),
            **options,
        }

    def submit(
        self, kind: str, tenant: str | None = None, **body
    ) -> dict:
        """POST /submit → ``{"job_id": ..., "state": "queued", ...}``.

        ``kind`` is ``"compile"``/``"run"``/``"lint"``; ``body`` is the
        same payload the synchronous endpoint takes (for runs, build it
        with :meth:`run_body`, or use :meth:`submit_run`).  Raises
        :class:`ServiceError` with status 429 (and ``retry_after`` set)
        when admission control rejects.
        """
        payload = {"kind": kind, "body": body}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._request("POST", "/submit", payload)

    def submit_run(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        tenant: str | None = None,
        transport: str | None = None,
        **options,
    ) -> dict:
        """Submit an async run job over json or wire transport.

        Wire submissions ship one binary frame whose header carries the
        job envelope (kind/tenant) — the router peeks the header and
        forwards the payload bytes opaquely.  The shm transport is
        synchronous-only (segment lifetime is scoped to one call); ask
        for ``run(transport="shm")`` instead.
        """
        transport = self.transport if transport is None else transport
        if transport == "shm":
            raise ValueError(
                "the shm transport is synchronous-only; use "
                "run(transport='shm')"
            )
        if transport == "wire":
            envelope = {
                "kind": "run",
                "body": {"key": key, "scalars": dict(scalars or {}), **options},
            }
            if tenant is not None:
                envelope["tenant"] = tenant
            frame = wire.encode_frame(envelope, _coerce_arrays(arrays))
            _, raw = self._request_raw(
                "POST", "/submit", frame, {"Content-Type": wire.CONTENT_TYPE}
            )
            return json.loads(raw)
        if transport != "json":
            raise ValueError(f"unknown transport {transport!r}")
        return self.submit(
            "run", tenant=tenant, **self.run_body(key, arrays, scalars, **options)
        )

    def poll(self, job_id: str) -> dict:
        """GET /poll/<id> — job state + timings, without the result body."""
        return self._request("GET", f"/poll/{job_id}")

    def result(self, job_id: str) -> dict:
        """GET /result/<id> — the completed job's full result.

        409 while the job is still queued/running.  Run-job results get
        their ``arrays`` decoded to ndarrays like :meth:`run`; a job that
        ran over the wire transport streams back as a binary frame
        (this client always ``Accept``s one).
        """
        rheaders, raw = self._request_raw(
            "GET",
            f"/result/{job_id}",
            None,
            {"Accept": f"{wire.CONTENT_TYPE}, application/json"},
        )
        ctype = (rheaders.get("Content-Type") or "").split(";")[0].strip()
        if ctype == wire.CONTENT_TYPE:
            body, views = wire.decode_frame(raw)
            out = dict(body)
            result = dict(out.get("result") or {})
            result["arrays"] = dict(views)
            out["result"] = result
            return out
        out = json.loads(raw)
        if isinstance(out.get("result"), dict):
            out["result"] = decode_run_result(out["result"])
        return out

    def cancel(self, job_id: str) -> dict:
        """POST /cancel/<id> — cancel a queued (or best-effort running) job."""
        return self._request("POST", f"/cancel/{job_id}", {})

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        interval: float = 0.02,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the result
        document (:meth:`result`).  Raises TimeoutError past ``timeout``."""
        t0 = time.monotonic()
        while True:
            state = self.poll(job_id)
            if state["state"] in ("done", "failed", "cancelled"):
                return self.result(job_id)
            if time.monotonic() - t0 > timeout:
                raise TimeoutError(
                    f"job {job_id} still {state['state']} after {timeout}s"
                )
            time.sleep(interval)


def decode_run_result(out: dict) -> dict:
    """Decode served JSON ``arrays`` back into ndarrays.

    ``array_dtypes`` tags (when the server sent them) restore the
    computed dtype; untagged responses keep the historical float64.
    """
    if isinstance(out.get("arrays"), dict):
        tags = out.get("array_dtypes") or {}
        out["arrays"] = {
            name: wire.array_from_json(data, tags.get(name, "<f8"))
            for name, data in out["arrays"].items()
        }
    return out
