"""A small stdlib client for the compile-and-run server.

Used by the tests, the CI smoke step, and anything that wants to talk to
``python -m repro serve`` without hand-rolling HTTP::

    from repro.service.client import ServiceClient

    client = ServiceClient(port=8923)
    program = client.compile(SOURCE, backend="mp")
    out = client.run(program["key"], {"A": A, "B": B}, {"n": 64, "m": 64})
    out["arrays"]["B"]          # numpy array, computed by the server
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Mapping

import numpy as np


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded body."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking JSON client bound to one server address.

    Thread-safe: every call opens its own connection, so one client can be
    shared by concurrent request threads (the concurrency tests do).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8923,
        timeout: float = 60.0,
    ) -> None:
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    # -- transport --------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except Exception:
                body = {"error": str(exc)}
            raise ServiceError(exc.code, body) from exc

    # -- endpoints --------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def compile(
        self,
        source: str,
        backend: str = "python",
        frontend: str = "auto",
        **options,
    ) -> dict:
        """POST /compile; returns the program description (with ``key``)."""
        return self._request(
            "POST",
            "/compile",
            {
                "source": source,
                "backend": backend,
                "frontend": frontend,
                "options": options,
            },
        )

    def lint(self, source: str, frontend: str = "auto", **options) -> dict:
        """POST /lint; returns the structured chunk-safety report."""
        return self._request(
            "POST",
            "/lint",
            {"source": source, "frontend": frontend, "options": options},
        )

    def run(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        **options,
    ) -> dict:
        """POST /run; result ``arrays`` come back as float64 ndarrays."""
        body = {
            "key": key,
            "arrays": {
                name: np.asarray(a, dtype=np.float64).tolist()
                for name, a in arrays.items()
            },
            "scalars": dict(scalars or {}),
            **options,
        }
        out = self._request("POST", "/run", body)
        out["arrays"] = {
            name: np.asarray(a, dtype=np.float64)
            for name, a in out.get("arrays", {}).items()
        }
        return out
