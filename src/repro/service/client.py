"""A small stdlib client for the compile-and-run server and the cluster.

Used by the tests, the CI smoke step, the load-test harness, and anything
that wants to talk to ``python -m repro serve`` / ``python -m repro
cluster`` without hand-rolling HTTP::

    from repro.service.client import ServiceClient

    client = ServiceClient(port=8923)
    program = client.compile(SOURCE, backend="mp")
    out = client.run(program["key"], {"A": A, "B": B}, {"n": 64, "m": 64})
    out["arrays"]["B"]          # numpy array, computed by the server

Against a cluster front door the same client also speaks the async job
protocol::

    job = client.submit("run", key=program["key"], arrays=..., scalars=...)
    state = client.poll(job["job_id"])
    out = client.result(job["job_id"])       # once state is "done"

Transient connection failures (replica restarting, listener backlog full,
connection reset mid-crash) are retried with exponential backoff + full
jitter when the client is built with ``retries > 0``; HTTP error
*responses* (4xx/5xx) are never retried here — the cluster router owns
job-level retry semantics.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Mapping

import numpy as np

#: Exception types treated as transient transport failures (safe to retry:
#: the request never produced a response).  ``URLError`` covers connection
#: refused/reset wrapped by urllib; the bare ones can escape during
#: response reads.
TRANSIENT_ERRORS = (
    urllib.error.URLError,
    ConnectionError,
    TimeoutError,
    http.client.BadStatusLine,
    http.client.IncompleteRead,
)


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded body.

    ``retry_after`` is the parsed ``Retry-After`` header in seconds when
    the server sent one (the cluster's 429 admission rejections do).
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServiceClient:
    """Blocking JSON client bound to one server address.

    Thread-safe: every call opens its own connection, so one client can be
    shared by concurrent request threads (the concurrency tests and the
    load harness do).

    ``retries``/``backoff_s``/``backoff_max_s``/``retry_deadline_s``
    configure transient-connection retry: attempt ``n`` sleeps
    ``min(backoff_max_s, backoff_s * 2**n)`` scaled by full jitter, and
    the whole retry loop gives up once ``retry_deadline_s`` has elapsed
    (or the attempts run out, whichever is first).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8923,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        retry_deadline_s: float | None = None,
    ) -> None:
        self.base = f"http://{host}:{port}"
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.retry_deadline_s = retry_deadline_s

    # -- transport --------------------------------------------------------
    def _request_once(
        self, method: str, path: str, payload: dict | None
    ) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except Exception:
                body = {"error": str(exc)}
            try:
                retry_after = float(exc.headers.get("Retry-After"))
            except (TypeError, ValueError):
                retry_after = None
            raise ServiceError(exc.code, body, retry_after) from exc

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        t0 = time.monotonic()
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceError:
                raise  # the server answered; job-level retry is not ours
            except TRANSIENT_ERRORS:
                elapsed = time.monotonic() - t0
                out_of_time = (
                    self.retry_deadline_s is not None
                    and elapsed >= self.retry_deadline_s
                )
                if attempt >= self.retries or out_of_time:
                    raise
                sleep = min(
                    self.backoff_max_s, self.backoff_s * (2**attempt)
                ) * random.uniform(0.5, 1.0)
                if self.retry_deadline_s is not None:
                    sleep = min(
                        sleep,
                        max(0.0, self.retry_deadline_s - elapsed),
                    )
                time.sleep(sleep)
                attempt += 1

    # -- endpoints --------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def compile(
        self,
        source: str,
        backend: str = "python",
        frontend: str = "auto",
        tenant: str | None = None,
        **options,
    ) -> dict:
        """POST /compile; returns the program description (with ``key``).

        ``tenant`` only matters against a cluster front door (quota
        accounting); a lone server ignores it.
        """
        body = {
            "source": source,
            "backend": backend,
            "frontend": frontend,
            "options": options,
        }
        if tenant is not None:
            body["tenant"] = tenant
        return self._request("POST", "/compile", body)

    def lint(
        self,
        source: str,
        frontend: str = "auto",
        tenant: str | None = None,
        **options,
    ) -> dict:
        """POST /lint; returns the structured chunk-safety report."""
        body = {"source": source, "frontend": frontend, "options": options}
        if tenant is not None:
            body["tenant"] = tenant
        return self._request("POST", "/lint", body)

    def run(
        self,
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        **options,
    ) -> dict:
        """POST /run; result ``arrays`` come back as float64 ndarrays."""
        body = self.run_body(key, arrays, scalars, **options)
        return decode_run_result(self._request("POST", "/run", body))

    # -- async job protocol (cluster front door) ---------------------------
    @staticmethod
    def run_body(
        key: str,
        arrays: Mapping[str, np.ndarray],
        scalars: Mapping[str, int | float] | None = None,
        **options,
    ) -> dict:
        """The JSON body of a run request (shared by /run and /submit)."""
        return {
            "key": key,
            "arrays": {
                name: np.asarray(a, dtype=np.float64).tolist()
                for name, a in arrays.items()
            },
            "scalars": dict(scalars or {}),
            **options,
        }

    def submit(
        self, kind: str, tenant: str | None = None, **body
    ) -> dict:
        """POST /submit → ``{"job_id": ..., "state": "queued", ...}``.

        ``kind`` is ``"compile"``/``"run"``/``"lint"``; ``body`` is the
        same payload the synchronous endpoint takes (for runs, build it
        with :meth:`run_body`).  Raises :class:`ServiceError` with status
        429 (and ``retry_after`` set) when admission control rejects.
        """
        payload = {"kind": kind, "body": body}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._request("POST", "/submit", payload)

    def poll(self, job_id: str) -> dict:
        """GET /poll/<id> — job state + timings, without the result body."""
        return self._request("GET", f"/poll/{job_id}")

    def result(self, job_id: str) -> dict:
        """GET /result/<id> — the completed job's full result.

        409 while the job is still queued/running.  Run-job results get
        their ``arrays`` decoded to ndarrays like :meth:`run`.
        """
        out = self._request("GET", f"/result/{job_id}")
        if isinstance(out.get("result"), dict):
            out["result"] = decode_run_result(out["result"])
        return out

    def cancel(self, job_id: str) -> dict:
        """POST /cancel/<id> — cancel a queued (or best-effort running) job."""
        return self._request("POST", f"/cancel/{job_id}", {})

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        interval: float = 0.02,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the result
        document (:meth:`result`).  Raises TimeoutError past ``timeout``."""
        t0 = time.monotonic()
        while True:
            state = self.poll(job_id)
            if state["state"] in ("done", "failed", "cancelled"):
                return self.result(job_id)
            if time.monotonic() - t0 > timeout:
                raise TimeoutError(
                    f"job {job_id} still {state['state']} after {timeout}s"
                )
            time.sleep(interval)


def decode_run_result(out: dict) -> dict:
    """Decode served ``arrays`` (nested lists) back into float64 ndarrays."""
    if isinstance(out.get("arrays"), dict):
        out["arrays"] = {
            name: np.asarray(a, dtype=np.float64)
            for name, a in out["arrays"].items()
        }
    return out
