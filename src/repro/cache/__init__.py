"""repro.cache — content-addressed, on-disk compilation artifacts.

The paper's whole argument is that coalescing moves scheduling work out of
the hot loop and into a one-time compile step.  This package makes that
step *actually* one-time across processes and runs: every expensive
artifact the pipeline produces — the lowered+transformed IR, generated
Python chunk sources, compiled C shared libraries — is stored on disk
under a canonical content hash of everything that determines it (source
text, transform options, backend flags, repro version).

* :func:`repro.cache.keys.artifact_key` — the canonical hash.
* :class:`repro.cache.store.ArtifactCache` — the store: atomic writes,
  corruption-tolerant reads (a bad entry is a miss, never a crash),
  size-bounded LRU eviction, and hit/miss/eviction counters that feed the
  ``/metrics`` endpoint of :mod:`repro.service`.

Environment knobs (all optional):

* ``REPRO_CACHE_DIR`` — where the default cache lives
  (default ``~/.cache/repro``).
* ``REPRO_CACHE_MAX_BYTES`` — size budget for LRU eviction
  (default 256 MiB).
* ``REPRO_NO_CACHE=1`` — disable the default cache entirely.
"""

from repro.cache.keys import CACHE_VERSION, artifact_key, canonical_payload
from repro.cache.store import (
    ArtifactCache,
    CacheEntry,
    CacheStats,
    configure,
    default_cache,
    resolve_cache,
)

__all__ = [
    "ArtifactCache",
    "CACHE_VERSION",
    "CacheEntry",
    "CacheStats",
    "artifact_key",
    "canonical_payload",
    "configure",
    "default_cache",
    "resolve_cache",
]
