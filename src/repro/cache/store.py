"""The content-addressed artifact store.

Layout (one directory per entry, one file per artifact)::

    <root>/
      objects/<key>/          # key = sha256 hex from repro.cache.keys
        meta.json             # {"kind": ..., "files": {name: size}, ...}
        <blob files>
      tmp/                    # staging area for atomic publication

Writes are atomic: an entry is staged under ``tmp/`` and published with a
single ``os.rename`` into ``objects/``, so readers (including readers in
other processes) only ever see complete entries.  When two processes race
to publish the same key, one rename wins and the loser quietly discards
its staging copy — both then read the same entry.

Reads are corruption-tolerant: a missing/unparsable ``meta.json``, a blob
listed in the manifest that is absent or has the wrong size — any of it —
counts the entry as corrupt, deletes it, bumps the ``errors`` counter, and
reports a miss.  Callers recompile; the cache never crashes a compile.

Eviction is size-bounded LRU: entry directories carry their last-use time
as the directory mtime (touched on every hit), and ``put`` evicts
oldest-first until the store fits ``max_bytes`` again.
"""

from __future__ import annotations

import json
import os
import secrets
import shutil
import string
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

#: Default size budget for LRU eviction (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_HEX = set(string.hexdigits)


class CacheKeyError(ValueError):
    """A key that is not a plain hex digest (path-traversal guard)."""


@dataclass
class CacheStats:
    """Monotonic counters, exported via ``/metrics``."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "errors": self.errors,
        }


@dataclass
class CacheEntry:
    """One published entry: its key, directory, and manifest."""

    key: str
    path: Path
    meta: dict = field(default_factory=dict)

    def file_path(self, name: str) -> Path:
        return self.path / name

    def read_bytes(self, name: str) -> bytes:
        return self.file_path(name).read_bytes()

    def read_text(self, name: str) -> str:
        return self.file_path(name).read_text()

    @property
    def files(self) -> dict[str, int]:
        """Manifest: blob name → expected size in bytes."""
        return dict(self.meta.get("files", {}))


class ArtifactCache:
    """Content-addressed on-disk cache of compilation artifacts.

    Thread-safe within a process (one lock around mutation and counters);
    safe across processes by construction (atomic rename publication).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.root = Path(root).expanduser()
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()

    # -- paths ------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def tmp_dir(self) -> Path:
        return self.root / "tmp"

    def path_for(self, key: str) -> Path:
        """Directory a (published) entry for ``key`` lives in."""
        if not key or any(c not in _HEX for c in key):
            raise CacheKeyError(f"cache key must be a hex digest, got {key!r}")
        return self.objects_dir / key

    # -- reads ------------------------------------------------------------
    def get(self, key: str) -> CacheEntry | None:
        """Look up ``key``; verified hit or None.

        Verifies the manifest (every listed blob present with its recorded
        size) before reporting a hit, and touches the entry for LRU.  Any
        defect deletes the entry and reports a miss.
        """
        path = self.path_for(key)
        with self._lock:
            if not path.is_dir():
                self.stats.misses += 1
                return None
            try:
                meta = json.loads((path / "meta.json").read_text())
                files = meta["files"]
                for name, size in files.items():
                    blob = path / name
                    if not blob.is_file() or blob.stat().st_size != size:
                        raise OSError(
                            f"blob {name!r} missing or truncated"
                        )
            except Exception:
                # Corrupt/truncated/raced entry: drop it, report a miss —
                # the caller recompiles and republishes.
                self.stats.errors += 1
                self.stats.misses += 1
                shutil.rmtree(path, ignore_errors=True)
                return None
            try:
                os.utime(path)  # LRU touch
            except OSError:  # pragma: no cover - entry raced away
                pass
            self.stats.hits += 1
            return CacheEntry(key, path, meta)

    def get_bytes(self, key: str, name: str) -> bytes | None:
        """One blob of a verified entry, or None on any miss."""
        entry = self.get(key)
        if entry is None:
            return None
        try:
            return entry.read_bytes(name)
        except OSError:  # pragma: no cover - deleted between get and read
            with self._lock:
                self.stats.errors += 1
            return None

    def get_text(self, key: str, name: str) -> str | None:
        blob = self.get_bytes(key, name)
        return None if blob is None else blob.decode("utf-8")

    # -- writes -----------------------------------------------------------
    def put(
        self,
        key: str,
        files: Mapping[str, bytes | str],
        meta: Mapping | None = None,
    ) -> CacheEntry:
        """Publish an entry atomically; idempotent under races.

        ``files`` maps blob name → content (text is stored UTF-8).  Extra
        ``meta`` keys are recorded alongside the manifest.  If another
        writer published ``key`` first, its entry wins and is returned.
        """
        dest = self.path_for(key)
        blobs = {
            name: (data.encode("utf-8") if isinstance(data, str) else data)
            for name, data in files.items()
        }
        if any(name == "meta.json" or "/" in name or name.startswith(".")
               for name in blobs):
            raise ValueError("blob names must be plain file names")
        manifest = {name: len(data) for name, data in blobs.items()}
        record = dict(meta or {})
        record["files"] = manifest
        staging = self.tmp_dir / f"{key[:16]}-{secrets.token_hex(8)}"
        staging.mkdir(parents=True)
        try:
            for name, data in blobs.items():
                (staging / name).write_bytes(data)
            (staging / "meta.json").write_text(
                json.dumps(record, sort_keys=True)
            )
            self.objects_dir.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(staging, dest)
            except OSError:
                # A concurrent writer published first — their (complete,
                # identical-keyed) entry stands.
                shutil.rmtree(staging, ignore_errors=True)
                return CacheEntry(key, dest, record)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        with self._lock:
            self.stats.stores += 1
        self._evict_if_needed()
        return CacheEntry(key, dest, record)

    def invalidate(self, key: str) -> None:
        """Best-effort removal of one entry."""
        shutil.rmtree(self.path_for(key), ignore_errors=True)

    def clear(self) -> None:
        """Remove every entry (counters are kept — they are monotonic)."""
        shutil.rmtree(self.objects_dir, ignore_errors=True)
        shutil.rmtree(self.tmp_dir, ignore_errors=True)

    # -- convenience ------------------------------------------------------
    def memo_text(self, key: str, name: str, producer: Callable[[], str]) -> str:
        """Return blob ``name`` under ``key``, producing+publishing on miss."""
        hit = self.get_text(key, name)
        if hit is not None:
            return hit
        text = producer()
        try:
            self.put(key, {name: text})
        except OSError:  # disk trouble must not fail the compile
            with self._lock:
                self.stats.errors += 1
        return text

    # -- accounting / eviction -------------------------------------------
    def _scan(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) per published entry — oldest first."""
        rows = []
        try:
            it = os.scandir(self.objects_dir)
        except FileNotFoundError:
            return []
        with it:
            for d in it:
                if not d.is_dir():
                    continue
                size = 0
                try:
                    with os.scandir(d.path) as files:
                        size = sum(
                            f.stat().st_size for f in files if f.is_file()
                        )
                    rows.append((d.stat().st_mtime, size, Path(d.path)))
                except OSError:  # pragma: no cover - raced away
                    continue
        rows.sort(key=lambda r: r[0])
        return rows

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._scan())

    def entry_count(self) -> int:
        return len(self._scan())

    def _evict_if_needed(self) -> int:
        """LRU-evict until the store fits ``max_bytes``; bytes freed.

        Cross-process audit: several replicas may run eviction against the
        same directory concurrently, and another process may *use* (touch)
        an entry between our scan and our rmtree.  Each candidate is
        therefore re-stat'ed immediately before removal — an entry whose
        mtime moved since the scan was just used by someone else and is
        spared this round; an entry that vanished was evicted by a peer
        and is not double-counted.  A reader that loses the race anyway
        sees a missing/truncated entry, which the corruption-tolerant
        ``get`` path already converts into a clean miss + recompile.
        """
        if self.max_bytes is None:
            return 0
        rows = self._scan()
        total = sum(size for _, size, _ in rows)
        freed = 0
        with self._lock:
            for mtime, size, path in rows:
                if total <= self.max_bytes:
                    break
                try:
                    if path.stat().st_mtime > mtime:
                        continue  # touched since the scan: recently used
                except OSError:
                    total -= size  # a peer evicted it first
                    continue
                shutil.rmtree(path, ignore_errors=True)
                total -= size
                freed += size
                self.stats.evictions += 1
        return freed

    def stats_dict(self) -> dict:
        """Counters + occupancy in the ``/metrics`` ``cache`` schema."""
        rows = self._scan()
        return {
            **self.stats.as_dict(),
            "entries": len(rows),
            "bytes": sum(size for _, size, _ in rows),
            "max_bytes": self.max_bytes,
            "dir": str(self.root),
        }


# ---------------------------------------------------------------------------
# The process-default cache (what "cache='default'" resolves to)
# ---------------------------------------------------------------------------

_UNSET = object()
_default: ArtifactCache | None | object = _UNSET
_default_lock = threading.Lock()


def _env_default() -> ArtifactCache | None:
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    root = os.environ.get(
        "REPRO_CACHE_DIR", os.path.join("~", ".cache", "repro")
    )
    try:
        max_bytes = int(os.environ["REPRO_CACHE_MAX_BYTES"])
    except (KeyError, ValueError):
        max_bytes = DEFAULT_MAX_BYTES
    return ArtifactCache(root, max_bytes=max_bytes)


def default_cache() -> ArtifactCache | None:
    """The process-wide default cache (None when disabled).

    Built lazily from ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_BYTES`` /
    ``REPRO_NO_CACHE`` on first use; overridable with :func:`configure`.
    """
    global _default
    with _default_lock:
        if _default is _UNSET:
            _default = _env_default()
        return _default  # type: ignore[return-value]


def configure(
    dir: str | os.PathLike | None = None,
    enabled: bool = True,
    max_bytes: int | None = None,
) -> ArtifactCache | None:
    """Set the process-default cache (the CLI's ``--cache-dir/--no-cache``).

    ``enabled=False`` disables default caching entirely; ``dir=None`` with
    ``enabled=True`` re-resolves from the environment.
    """
    global _default
    with _default_lock:
        if not enabled:
            _default = None
        elif dir is None and max_bytes is None:
            _default = _env_default()
        else:
            base = _env_default()
            root = dir if dir is not None else (
                base.root if base is not None else
                os.path.join("~", ".cache", "repro")
            )
            _default = ArtifactCache(
                root,
                max_bytes=(
                    max_bytes
                    if max_bytes is not None
                    else (base.max_bytes if base else DEFAULT_MAX_BYTES)
                ),
            )
        return _default


def resolve_cache(
    cache: "ArtifactCache | str | os.PathLike | None" = "default",
) -> ArtifactCache | None:
    """Normalize a user-facing ``cache=`` argument to a store or None.

    ``"default"`` → the process default (which may itself be disabled);
    ``None``/``False`` → no caching; an :class:`ArtifactCache` → itself;
    a path → a store rooted there.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, ArtifactCache):
        return cache
    if isinstance(cache, str) and cache == "default":
        return default_cache()
    return ArtifactCache(cache)
