"""Canonical cache keys.

A key is the SHA-256 of a canonical JSON rendering of everything that
determines the artifact: the artifact kind, the source text (Python or
mini-language), the transform/backend options, and the repro + cache
format versions.  Two processes computing the key for the same inputs get
the same hex digest, which is what makes the on-disk store shareable
between the in-process API, the CLI, and the server.
"""

from __future__ import annotations

import hashlib
import json
import platform

#: Bump when the on-disk entry format (or what a kind stores) changes —
#: old entries simply stop being found, they are never misread.
CACHE_VERSION = 1


def _repro_version() -> str:
    from repro import __version__

    return __version__


def canonical_payload(kind: str, fields: dict) -> str:
    """The canonical JSON text that gets hashed for a key.

    Sorted keys, no whitespace variance, explicit versions.  ``pickle``
    artifacts additionally depend on the Python major.minor (a pickle
    written by 3.12 should not be the 3.11 process's hit).
    """
    payload = {
        "kind": kind,
        "cache_version": CACHE_VERSION,
        "repro_version": _repro_version(),
        "python": platform.python_version_tuple()[:2],
        **fields,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def artifact_key(kind: str, **fields) -> str:
    """SHA-256 hex key for an artifact of ``kind`` determined by ``fields``.

    ``fields`` values must be JSON-serializable (strings, numbers, bools,
    None, lists/tuples of those); anything option-like should be passed
    explicitly rather than folded into a repr.
    """
    text = canonical_payload(kind, fields)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
