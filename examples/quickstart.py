"""Quickstart: coalesce your first loop nest.

Pipeline shown here:

1. write a nest in the Fortran-like mini-language (or a Python function),
2. let the dependence analyser prove which loops are parallel,
3. coalesce the DOALL nest into one flat loop with index recovery,
4. run original and transformed programs on real numpy arrays and check
   they agree,
5. emit executable Python for the transformed program.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import mark_doall
from repro.codegen import compile_procedure
from repro.frontend import parse
from repro.ir import to_source, validate
from repro.runtime import run
from repro.runtime.equivalence import copy_env, random_env
from repro.transforms import coalesce_procedure

SOURCE = """
procedure sweep(A[2], B[2]; n, m)
  for i = 1, n
    for j = 1, m
      B(i, j) := 0.5 * A(i, j) + 0.25 * (A(i, j) * A(i, j))
    end
  end
end
"""


def main() -> None:
    # 1. Parse and validate.
    proc = parse(SOURCE)
    validate(proc)
    print("== original (as written: all loops serial) ==")
    print(to_source(proc))

    # 2. Dependence analysis proves both loops independent.
    tagged = mark_doall(proc)
    print("\n== after dependence analysis ==")
    print(to_source(tagged))

    # 3. Coalesce the DOALL pair into one flat loop.
    coalesced, results = coalesce_procedure(tagged)
    info = results[0]
    print("\n== after loop coalescing ==")
    print(to_source(coalesced))
    print(f"\nflat index: {info.flat_var} runs 1 .. "
          f"{to_source(info.loop.upper)}")
    for var, expr in info.recovery.items():
        print(f"  recover {var} = {to_source(expr)}")

    # 4. Execute both on the same random data — results must match exactly.
    n, m = 7, 11
    env = random_env(tagged, {"A": (n + 1, m + 1), "B": (n + 1, m + 1)})
    env_orig, env_coal = copy_env(env), copy_env(env)
    run(tagged, env_orig, {"n": n, "m": m})
    run(coalesced, env_coal, {"n": n, "m": m})
    assert np.array_equal(env_orig["B"], env_coal["B"])
    print("\nexecution check: original and coalesced agree bit-for-bit ✓")

    # 5. Generate executable Python for the coalesced program.
    compiled = compile_procedure(coalesced)
    print("\n== generated Python ==")
    print(compiled.source)
    env_gen = copy_env(env)
    compiled.run(env_gen, {"n": n, "m": m})
    assert np.array_equal(env_orig["B"], env_gen["B"])
    print("generated code agrees too ✓")


if __name__ == "__main__":
    main()
