"""Scheduling study: pick a policy for a coalesced loop.

Coalescing turns a whole nest into one flat index, which makes every
single-loop scheduling policy applicable to the nest.  This example sweeps
the provided policies over (a) uniform bodies and (b) a strongly skewed cost
profile, on machines with cheap and expensive dispatch, and prints the
resulting completion times, dispatch counts, and balance — the practical
decision matrix a runtime implementor needs.

Run:  python examples/scheduling_study.py
"""

from repro.experiments.report import Table
from repro.machine import MachineParams
from repro.scheduling import NestCosts, simulate_coalesced
from repro.scheduling.policies import (
    ChunkSelfScheduled,
    GuidedSelfScheduled,
    SelfScheduled,
    StaticBalanced,
    StaticCyclic,
)

POLICIES = [
    StaticBalanced(),
    StaticCyclic(),
    SelfScheduled(),
    ChunkSelfScheduled(chunk=8),
    GuidedSelfScheduled(),
]


def skewed_cost(idx):
    """Almost all work concentrated in the last rows (e.g. a guarded hot
    region): the adversarial case for static distribution."""
    i, j = idx
    return 40.0 if i > 28 else 2.0


def study(title: str, nest: NestCosts, params: MachineParams) -> Table:
    table = Table(
        title, ["policy", "time", "dispatches", "busy spread"]
    )
    for policy in POLICIES:
        r = simulate_coalesced(nest, params, policy=policy)
        table.add(
            policy.name,
            round(r.finish_time, 1),
            r.total_dispatches,
            round(r.imbalance, 1),
        )
    return table


def main() -> None:
    uniform = NestCosts((32, 16), body_cost=10.0)
    skewed = NestCosts((32, 16), cost_fn=skewed_cost)

    cheap = MachineParams(processors=8, dispatch_cost=5)
    dear = MachineParams(processors=8, dispatch_cost=200)

    print(study("uniform bodies, cheap dispatch (sigma=5)", uniform, cheap).format())
    print()
    print(study("uniform bodies, dear dispatch (sigma=200)", uniform, dear).format())
    print()
    print(study("skewed bodies, cheap dispatch (sigma=5)", skewed, cheap).format())
    print()
    print(study("skewed bodies, dear dispatch (sigma=200)", skewed, dear).format())

    # Timelines make the difference visible: static strands processors on
    # the heavy tail; GSS back-fills it.
    from repro.machine import render_timeline

    print("\ntimeline, skewed bodies, static-balanced:")
    print(render_timeline(simulate_coalesced(skewed, cheap, policy=POLICIES[0]), 64))
    print("\ntimeline, skewed bodies, gss:")
    print(render_timeline(simulate_coalesced(skewed, cheap, policy=POLICIES[4]), 64))
    print(
        "\nReading: with uniform work, static blocks are unbeatable — "
        "dynamic schemes only add dispatch cost.  With skewed work, pure "
        "self-scheduling balances best but its advantage collapses when "
        "dispatch is expensive; GSS keeps most of the balance at a fraction "
        "of the dispatches.  This is why the paper pairs coalescing with "
        "fetch&add self-scheduling on combining-network machines and with "
        "static blocks elsewhere."
    )


if __name__ == "__main__":
    main()
