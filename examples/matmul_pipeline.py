"""Matrix multiply: the paper's flagship example, end to end.

Starts from an ordinary *Python* function (the ``ast`` frontend), analyses
it, coalesces the (i, j) DOALL pair — turning n² units of parallelism into
one flat loop — verifies against numpy, and then asks the simulated
multiprocessor what the transformation buys at various machine sizes.

Run:  python examples/matmul_pipeline.py
"""

import numpy as np

from repro.analysis import mark_doall
from repro.experiments.report import Table
from repro.frontend import from_python
from repro.ir import to_source
from repro.machine import MachineParams
from repro.runtime import run
from repro.scheduling import (
    NestCosts,
    simulate_coalesced_blocked,
    simulate_outer_only,
    simulate_sequential,
)
from repro.transforms import coalesce_procedure


# An ordinary Python function; `range` loops are serial as written —
# the dependence analyser upgrades what it can prove independent.
MATMUL_SRC = '''
def matmul(A, B, C, n):
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            C[i, j] = 0.0
            for k in range(1, n + 1):
                C[i, j] = C[i, j] + A[i, k] * B[k, j]
'''


def main() -> None:
    proc = mark_doall(from_python(MATMUL_SRC))
    print("== analysed matmul (i, j proven DOALL; k is a reduction) ==")
    print(to_source(proc))

    coalesced, results = coalesce_procedure(proc)
    print("\n== coalesced ==")
    print(to_source(coalesced))
    assert results[0].index_vars == ("i", "j")

    # Verify against numpy on real data.
    n = 12
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n + 1, n + 1))
    b = rng.standard_normal((n + 1, n + 1))
    c = np.zeros((n + 1, n + 1))
    run(coalesced, {"A": a, "B": b, "C": c}, {"n": n})
    np.testing.assert_allclose(c[1:, 1:], a[1:, 1:] @ b[1:, 1:])
    print(f"\nnumerical check vs numpy @: max err "
          f"{np.max(np.abs(c[1:, 1:] - a[1:, 1:] @ b[1:, 1:])):.2e} ✓")

    # What does coalescing buy on a parallel machine?  The body of one
    # (i, j) task is the k-reduction: ~3 flops × n plus bookkeeping.
    n_big = 24
    body_cost = 3.0 * n_big
    nest = NestCosts((n_big, n_big), body_cost=body_cost)
    table = Table(
        f"matmul {n_big}x{n_big}: simulated speedup "
        f"(outer-only parallel vs coalesced)",
        ["p", "outer-only", "coalesced", "advantage"],
    )
    for p in (4, 8, 16, 24, 32, 64, 128, 256):
        params = MachineParams(processors=p)
        seq = simulate_sequential(nest, params)
        s_outer = simulate_outer_only(nest, params).speedup(seq)
        s_coal = simulate_coalesced_blocked(nest, params).speedup(seq)
        table.add(p, round(s_outer, 2), round(s_coal, 2),
                  f"{s_coal / s_outer:.2f}x")
    print()
    print(table.format())
    print(
        f"\nouter-only parallelism is capped at n = {n_big}; the coalesced "
        f"loop exposes n^2 = {n_big * n_big} units."
    )


if __name__ == "__main__":
    main()
