"""Gauss–Jordan elimination: coalescing inside a hybrid (serial/parallel) nest.

Real programs are rarely perfect rectangular DOALL nests top to bottom.
Gauss–Jordan has a serial pivot loop wrapping parallel work, plus a clean
DOALL pair at the end.  This example shows `coalesce_procedure` doing the
right thing automatically — descending through the serial loop, leaving the
imperfect update nest alone, and coalescing the solution nest — and then
verifies the transformed solver against numpy.

Run:  python examples/gauss_jordan_hybrid.py
"""

import numpy as np

from repro.ir import to_source, validate
from repro.runtime import run
from repro.runtime.equivalence import copy_env
from repro.transforms import coalesce_procedure
from repro.workloads import gauss_jordan, gauss_reference, make_env


def main() -> None:
    w = gauss_jordan()
    print("== Gauss-Jordan (hybrid nest) ==")
    print(to_source(w.proc))

    coalesced, results = coalesce_procedure(w.proc)
    validate(coalesced)
    print("\n== after coalesce_procedure ==")
    print(to_source(coalesced))
    print(
        f"\ncoalesced nests: {len(results)} — the solution-extraction pair "
        f"{results[0].index_vars} became one loop of "
        f"{to_source(results[0].loop.upper)} iterations; the pivot loop and "
        "the guarded update (imperfect nest) were correctly left alone."
    )

    # Solve a real system with the transformed program.
    n, m = 20, 4
    arrays, sc = make_env(w, {"n": n, "m": m}, seed=42)
    before = copy_env(arrays)
    run(coalesced, arrays, sc)
    x_ref = gauss_reference(before, sc)
    err = np.max(np.abs(arrays["X"][1:, 1:] - x_ref))
    print(f"\nsolved {n}x{n} system with {m} right-hand sides;")
    print(f"max |X - numpy.linalg.solve| = {err:.2e} ✓")
    assert err < 1e-9


if __name__ == "__main__":
    main()
