"""The OpenMP lineage: loop coalescing is `collapse`, 35 years early.

The 1987 transformation and OpenMP's modern ``collapse(k)`` clause are the
same idea at different layers: one flattens the nest *in the program text*
(emitting explicit index recovery), the other asks the compiler's runtime to
do it.  This example emits both as compilable C from the same IR —

* the untransformed nest with ``#pragma omp parallel for collapse(2)``
  (what you would write today), and
* the source-coalesced loop with a plain ``parallel for`` (what the paper's
  restructurer produced)

— and, when gcc is available, compiles both with ``-fopenmp``, runs them on
the same data, and checks they agree with the Python reference interpreter
bit for bit.

Run:  python examples/openmp_lineage.py
"""

import numpy as np

from repro.codegen import compile_c_procedure, generate_c, have_compiler
from repro.frontend import parse
from repro.runtime import run
from repro.runtime.equivalence import copy_env, random_env
from repro.transforms import coalesce_procedure

SOURCE = """
procedure heat(U[2], V[2]; n, m)
  doall i = 2, n - 1
    doall j = 2, m - 1
      V(i, j) := 0.25 * (U(i - 1, j) + U(i + 1, j) + U(i, j - 1) + U(i, j + 1))
    end
  end
end
"""


def main() -> None:
    proc = parse(SOURCE)
    coalesced, info = coalesce_procedure(proc)

    modern = generate_c(proc)
    vintage = generate_c(coalesced)

    print("== modern form: the nest + OpenMP collapse ==")
    print(_kernel_only(modern))
    print("== 1987 form: source-level coalescing ==")
    print(_kernel_only(vintage))

    if not have_compiler():
        print("(no gcc on PATH — skipping the compile-and-run check)")
        return

    n, m = 18, 13
    env = random_env(proc, {"U": (n + 1, m + 1), "V": (n + 1, m + 1)})
    reference = copy_env(env)
    run(proc, reference, {"n": n, "m": m})

    for label, p in (("collapse-pragma", proc), ("source-coalesced", coalesced)):
        e = copy_env(env)
        compile_c_procedure(p).run(e, {"n": n, "m": m})
        assert np.array_equal(reference["V"], e["V"]), label
        print(f"{label:>17}: compiled with gcc -fopenmp, matches reference ✓")
    print("\nSame results, same idea — coalescing became `collapse`.")


def _kernel_only(c_source: str) -> str:
    return "void " + c_source.split("void ", 1)[1]


if __name__ == "__main__":
    main()
