"""Legacy setuptools shim.

The offline environment has no ``wheel`` package, so ``pip install -e .``
cannot take the PEP 517 path; this file lets pip fall back to the classic
``setup.py develop`` editable install.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
